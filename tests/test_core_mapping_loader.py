"""Unit tests for per-region mapping plans and the daemon loader."""

import pytest

from repro.core.loading_set import build_loading_set, write_loading_set_file
from repro.core.loader import (
    LoaderStats,
    coalesce_ordered_pages,
    loading_set_loader,
    ordered_pages_loader,
)
from repro.core.mapping import build_faasnap_plan, nonzero_regions
from repro.core.working_set import WorkingSetGroups
from repro.host import ANONYMOUS, AddressSpace, FileBacking, PageCache
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import MicroVM, VmmParams, create_snapshot
from repro.host.params import HostParams


# -- nonzero region coalescing -----------------------------------------


def test_nonzero_regions_exact_runs():
    assert nonzero_regions([0, 1, 2, 10, 11], merge_gap=0) == [(0, 3), (10, 2)]


def test_nonzero_regions_merge_small_gaps():
    assert nonzero_regions([0, 1, 5, 6], merge_gap=4) == [(0, 7)]
    assert nonzero_regions([0, 1, 5, 6], merge_gap=2) == [(0, 2), (5, 2)]


def test_nonzero_regions_empty():
    assert nonzero_regions([]) == []


# -- plan construction ----------------------------------------------------


class Rig:
    def __init__(self):
        self.env = Environment()
        self.device = BlockDevice(
            self.env, DeviceSpec("d", 100, 10, 1589, 285_000, queue_depth=16)
        )
        self.store = FileStore(self.env, self.device)
        self.cache = PageCache(self.env)

    def run(self, gen):
        return self.env.run(until=self.env.process(gen))


def test_faasnap_plan_layers():
    rig = Rig()
    snapshot = create_snapshot(
        rig.store, "fn", 1000, {10: 1, 11: 2, 500: 5, 501: 6}
    )
    ws = WorkingSetGroups(group_of={10: 1, 11: 1})
    ls = build_loading_set(ws, snapshot.nonzero_pages(), merge_gap=0)
    lf = write_loading_set_file(rig.store, "fn.ls", ls, snapshot)
    plan = build_faasnap_plan(snapshot, ls, lf, nonzero_merge_gap=0)
    # anonymous base + 2 nonzero regions + 1 loading region
    assert len(plan) == 4
    assert plan.directives[0].is_anonymous
    assert plan.directives[0].npages == 1000

    vm = MicroVM(
        rig.env, HostParams(), VmmParams(), rig.cache, 1000
    )
    rig.run(vm.apply_plan(plan))
    # Table 1 mapping: loading set -> loading file; cold set -> memory
    # file; everything else anonymous.
    assert vm.space.resolve(10).backing.file is lf
    assert vm.space.resolve(500).backing.file is snapshot.memory_file
    assert vm.space.resolve(0).backing is ANONYMOUS
    assert vm.space.resolve(999).backing is ANONYMOUS
    assert vm.space.coverage_gaps() == []


def test_faasnap_plan_without_loading_set_is_per_region_ablation():
    rig = Rig()
    snapshot = create_snapshot(rig.store, "fn", 100, {10: 1})
    plan = build_faasnap_plan(snapshot)
    assert len(plan) == 2


def test_faasnap_plan_rejects_half_loading_args():
    rig = Rig()
    snapshot = create_snapshot(rig.store, "fn", 100, {10: 1})
    ws = WorkingSetGroups(group_of={10: 1})
    ls = build_loading_set(ws, [10])
    with pytest.raises(ValueError):
        build_faasnap_plan(snapshot, loading_set=ls, loading_file=None)


def test_plan_memory_integrity():
    """Every guest page observes the snapshot's value through the
    layered mapping."""
    rig = Rig()
    contents = {i: 100 + i for i in list(range(5, 15)) + list(range(40, 44))}
    snapshot = create_snapshot(rig.store, "fn", 64, contents)
    ws = WorkingSetGroups(group_of={5: 1, 6: 1, 41: 2})
    ls = build_loading_set(ws, snapshot.nonzero_pages(), merge_gap=2)
    lf = write_loading_set_file(rig.store, "fn.ls", ls, snapshot)
    plan = build_faasnap_plan(snapshot, ls, lf, nonzero_merge_gap=4)
    vm = MicroVM(rig.env, HostParams(), VmmParams(), rig.cache, 64)
    rig.run(vm.apply_plan(plan))
    for page in range(64):
        assert vm.space.backing_value(page) == contents.get(page, 0), page


# -- loader ----------------------------------------------------------------


def test_coalesce_ascending_pages_merges():
    units = coalesce_ordered_pages([0, 1, 2, 3], coalesce_gap=0)
    assert units == [(0, 4)]


def test_coalesce_respects_gap_and_chunk():
    units = coalesce_ordered_pages([0, 5, 100], coalesce_gap=8, chunk_pages=64)
    assert units == [(0, 6), (100, 1)]
    units = coalesce_ordered_pages(
        list(range(100)), coalesce_gap=0, chunk_pages=32
    )
    assert units == [(0, 32), (32, 32), (64, 32), (96, 4)]


def test_coalesce_out_of_order_splits():
    units = coalesce_ordered_pages([10, 11, 5, 6], coalesce_gap=8)
    assert units == [(10, 2), (5, 2)]


def test_coalesce_skips_pages_already_covered():
    units = coalesce_ordered_pages([0, 3, 2], coalesce_gap=4)
    assert units == [(0, 4)]


def test_loading_set_loader_populates_cache_sequentially():
    rig = Rig()
    lf = rig.store.create("ls", 256, pages={i: i + 1 for i in range(256)})
    stats = LoaderStats()
    rig.run(loading_set_loader(rig.env, rig.cache, lf, stats, chunk_pages=64))
    assert rig.cache.count_for_file("ls") == 256
    assert stats.pages_fetched == 256
    assert stats.bytes_read == 256 * 4096
    assert stats.fetch_time_us > 0
    # 4 chunks, 3 of them sequential continuations.
    assert rig.device.stats.requests == 4
    assert rig.device.stats.sequential_requests == 3


def test_loader_skips_resident_pages():
    rig = Rig()
    lf = rig.store.create("ls", 64, pages={i: 1 for i in range(64)})
    rig.cache.insert_range("ls", 0, 64)
    stats = LoaderStats()
    rig.run(loading_set_loader(rig.env, rig.cache, lf, stats))
    assert stats.pages_fetched == 0
    assert rig.device.stats.requests == 0


def test_guest_fault_waits_on_loader_pending_read():
    rig = Rig()
    lf = rig.store.create("ls", 64, pages={i: 1 for i in range(64)})
    stats = LoaderStats()
    waited = []

    def guest():
        # Fault while the loader's first chunk is in flight.
        yield rig.env.timeout(1.0)
        pending = rig.cache.pending_event("ls", 10)
        assert pending is not None
        yield pending
        waited.append(rig.env.now)

    rig.env.process(
        loading_set_loader(rig.env, rig.cache, lf, stats, chunk_pages=64)
    )
    rig.env.process(guest())
    rig.env.run()
    assert waited and waited[0] > 1.0


def test_ordered_pages_loader_address_vs_scattered_order():
    """Address-ordered loading is faster on disk than group-scattered
    loading of the same pages — the tradeoff behind working-set
    groups (paper §4.3 / §6.5)."""
    pages = [i * 4 for i in range(512)]  # every 4th page

    def run_loader(order):
        rig = Rig()
        mem = rig.store.create(
            "mem", 4096, pages={p: 1 for p in pages}
        )
        stats = LoaderStats()
        rig.run(
            ordered_pages_loader(
                rig.env, rig.cache, mem, order, stats, coalesce_gap=8
            )
        )
        return stats.fetch_time_us

    ascending = run_loader(sorted(pages))
    import random

    shuffled = list(pages)
    random.Random(7).shuffle(shuffled)
    scattered = run_loader(shuffled)
    assert ascending < scattered
