"""Tests for hierarchical snapshot staging (paper §7.2)."""

import dataclasses

import pytest

from repro.core import Policy
from repro.core.daemon import FaaSnapPlatform
from repro.core.restore import PlatformConfig, invocation_process
from repro.core.staging import SnapshotStager
from repro.sim import Environment
from repro.storage import BlockDevice, FileStore
from repro.storage.presets import NVME_LOCAL, S3_OBJECT
from repro.workloads.base import INPUT_A, WorkloadProfile

SMALL = WorkloadProfile(
    name="small-staging",
    description="tiny profile for staging tests",
    core_pages=300,
    var_base_pages=100,
    var_pool_pages=400,
    anon_base_pages=150,
    compute_base_us=10_000.0,
    spread_factor=5.0,
    input_b_ratio=1.4,
    total_pages=16_384,
    boot_pages=1_024,
)


def s3_platform():
    config = dataclasses.replace(PlatformConfig(), device=S3_OBJECT)
    return FaaSnapPlatform(config)


def test_stage_file_copies_contents_and_memoizes():
    platform = s3_platform()
    handle = platform.register_function(SMALL)
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)

    local_device = BlockDevice(platform.env, NVME_LOCAL)
    local_store = FileStore(platform.env, local_device)
    stager = SnapshotStager(platform.env, local_store)

    remote = artifacts.warm_snapshot.memory_file
    process = platform.env.process(stager.stage_file(remote))
    local = platform.env.run(until=process)
    assert local.device is local_device
    assert local.pages == remote.pages
    assert local.sparse == remote.sparse
    assert stager.stats.files_staged == 1
    # Sparse: only non-zero pages cross the wire.
    assert stager.stats.bytes_transferred == len(remote.pages) * 4096
    assert stager.is_staged(remote.name)

    # Second staging is free (memoized).
    before = stager.stats.bytes_transferred
    process = platform.env.process(stager.stage_file(remote))
    again = platform.env.run(until=process)
    assert again is local
    assert stager.stats.bytes_transferred == before


def test_stage_artifacts_bundle():
    platform = s3_platform()
    handle = platform.register_function(SMALL)
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)

    local_store = FileStore(
        platform.env, BlockDevice(platform.env, NVME_LOCAL)
    )
    stager = SnapshotStager(platform.env, local_store)
    process = platform.env.process(stager.stage_artifacts(artifacts))
    staged = platform.env.run(until=process)

    assert staged.warm_snapshot.memory_file.device.spec.name == "nvme-local"
    assert staged.loading_file.device.spec.name == "nvme-local"
    assert staged.loading_set is artifacts.loading_set  # metadata reused
    assert staged.warm_snapshot.page_value(0) == (
        artifacts.warm_snapshot.page_value(0)
    )
    assert stager.stats.files_staged == 3  # memory + vmstate + loading


def test_staged_invocation_much_faster_than_direct_s3():
    platform = s3_platform()
    handle = platform.register_function(SMALL)
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    test_input = SMALL.input_b()

    platform.drop_caches()
    direct = platform.env.run(
        until=platform.env.process(
            invocation_process(
                platform.env,
                platform.config,
                platform.store,
                platform.cache,
                None,
                artifacts,
                test_input,
                Policy.FAASNAP,
                "direct-s3",
            )
        )
    )

    local_store = FileStore(
        platform.env, BlockDevice(platform.env, NVME_LOCAL)
    )
    stager = SnapshotStager(platform.env, local_store)
    staged_artifacts = platform.env.run(
        until=platform.env.process(stager.stage_artifacts(artifacts))
    )
    platform.drop_caches()
    staged = platform.env.run(
        until=platform.env.process(
            invocation_process(
                platform.env,
                platform.config,
                platform.store,
                platform.cache,
                None,
                staged_artifacts,
                test_input,
                Policy.FAASNAP,
                "staged-local",
            )
        )
    )
    assert staged.total_us < direct.total_us
    # Staging itself took time — the one-shot cost the tier pays.
    assert stager.stats.staging_time_us > 0
