"""Unit tests for the microVM and vCPU."""

import pytest

from repro.host import FaultKind, HostParams, PageCache
from repro.sim import Environment, Resource, SimulationError
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import (
    GuestAccess,
    MappingPlan,
    MicroVM,
    VmmParams,
    create_snapshot,
    full_file_plan,
)

HOST = HostParams()
VMM = VmmParams()


class Rig:
    def __init__(self, num_pages=4096, cpu_slots=None):
        self.env = Environment()
        self.device = BlockDevice(
            self.env, DeviceSpec("d", 100.0, 10.0, 1589.0, 285_000, queue_depth=16)
        )
        self.store = FileStore(self.env, self.device)
        self.cache = PageCache(self.env)
        self.cpu = (
            Resource(self.env, cpu_slots) if cpu_slots is not None else None
        )
        self.num_pages = num_pages

    def vm(self, label="vm", use_uffd=False):
        return MicroVM(
            self.env,
            HOST,
            VMM,
            self.cache,
            self.num_pages,
            label=label,
            cpu=self.cpu,
            use_uffd=use_uffd,
        )

    def run(self, gen):
        return self.env.run(until=self.env.process(gen))


def test_restore_charges_setup_costs():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {1: 1})
    vm = rig.vm()
    setup = rig.run(vm.restore(snap))
    assert setup > VMM.vmm_start_us + VMM.vmstate_restore_us
    assert vm.is_set_up
    assert vm.space.coverage_gaps() == []


def test_restore_twice_rejected():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {1: 1})
    vm = rig.vm()
    rig.run(vm.restore(snap))
    with pytest.raises(SimulationError):
        rig.run(vm.restore(snap))


def test_full_file_plan_is_one_mapping():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {1: 1})
    plan = full_file_plan(snap)
    assert len(plan) == 1
    vm = rig.vm()
    rig.run(vm.restore(snap, plan))
    assert vm.space.vma_count == 1


def test_mapping_plan_cost_scales_with_regions():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {1: 1})
    many = MappingPlan()
    many.add_anonymous(0, rig.num_pages)
    for start in range(0, 1000, 10):
        many.add_file(start, 5, snap.memory_file, start)
    vm_many = rig.vm("many")
    t_many = rig.run(vm_many.restore(snap, many))

    rig2 = Rig()
    snap2 = create_snapshot(rig2.store, "fn", rig2.num_pages, {1: 1})
    few = MappingPlan()
    few.add_anonymous(0, rig2.num_pages)
    vm_few = rig2.vm("few")
    t_few = rig2.run(vm_few.restore(snap2, few))
    assert t_many > t_few
    assert t_many - t_few == pytest.approx(100 * HOST.mmap_region_us)


def test_invocation_faults_through_restored_mapping():
    rig = Rig()
    contents = {i: i + 1 for i in range(64)}
    snap = create_snapshot(rig.store, "fn", rig.num_pages, contents)
    vm = rig.vm()
    rig.run(vm.restore(snap))

    trace = [GuestAccess(page=i) for i in range(0, 64, 32)]
    result = rig.run(vm.vcpu.run_trace(trace))
    kinds = [r.kind for r in result.records]
    assert kinds == [FaultKind.MAJOR, FaultKind.MAJOR]
    assert vm.handler.observed_value(0) == 1


def test_vcpu_think_time_accumulates():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {})
    vm = rig.vm()
    vm.make_warm(snap)
    trace = [GuestAccess(page=i, think_us=100.0) for i in range(10)]
    result = rig.run(vm.vcpu.run_trace(trace, tail_think_us=500.0))
    assert result.elapsed_us >= 1500.0


def test_warm_vm_rereads_are_free_and_new_pages_fault_anon():
    rig = Rig()
    contents = {i: i + 1 for i in range(100)}
    snap = create_snapshot(rig.store, "fn", rig.num_pages, contents)
    vm = rig.vm()
    vm.make_warm(snap)
    trace = [GuestAccess(page=5), GuestAccess(page=2000)]
    result = rig.run(vm.vcpu.run_trace(trace))
    assert result.records[0].kind is FaultKind.NONE
    assert result.records[1].kind is FaultKind.ANON
    assert vm.handler.observed_value(5) == 6
    assert rig.device.stats.requests == 0


def test_warm_vm_preserves_contents():
    rig = Rig()
    snap = create_snapshot(rig.store, "fn", rig.num_pages, {7: 77})
    vm = rig.vm()
    vm.make_warm(snap)
    assert vm.space.backing_value(7) == 77
    assert vm.space.backing_value(8) == 0


def test_cpu_contention_slows_think_time():
    def total_time(slots, nvms):
        rig = Rig(cpu_slots=slots)
        snap = create_snapshot(rig.store, "fn", rig.num_pages, {})
        done = []

        def run_vm(i):
            vm = rig.vm(f"vm{i}")
            vm.make_warm(snap)
            trace = [GuestAccess(page=p, think_us=1000.0) for p in range(5)]
            yield from vm.vcpu.run_trace(trace)
            done.append(rig.env.now)

        for i in range(nvms):
            rig.env.process(run_vm(i))
        rig.env.run()
        return max(done)

    uncontended = total_time(slots=8, nvms=4)
    contended = total_time(slots=2, nvms=4)
    assert contended > uncontended


def test_cold_boot_charges_full_startup_and_leaves_warm_state():
    rig = Rig()
    vm = rig.vm()
    contents = {5: 55, 9: 99, 11: 0}
    elapsed = rig.run(vm.cold_boot(contents, runtime_init_us=2_000_000.0))
    assert elapsed == pytest.approx(
        VMM.vmm_start_us + VMM.cold_boot_us + 2_000_000.0
    )
    assert vm.is_set_up
    assert vm.space.backing_value(5) == 55
    assert vm.space.backing_value(11) == 0
    # Booted state behaves like a warm VM: reads are free.
    result = rig.run(vm.vcpu.run_trace([GuestAccess(page=5)]))
    assert result.fault_count == 0
    assert rig.device.stats.requests == 0


def test_cold_boot_twice_rejected():
    rig = Rig()
    vm = rig.vm()
    rig.run(vm.cold_boot({}, runtime_init_us=0.0))
    with pytest.raises(SimulationError):
        rig.run(vm.cold_boot({}, runtime_init_us=0.0))


def test_memory_integrity_through_restore_and_execution():
    """Every page the guest reads must observe the snapshot's value."""
    rig = Rig()
    contents = {i: 1000 + i for i in range(0, 256, 3)}
    snap = create_snapshot(rig.store, "fn", rig.num_pages, contents)
    vm = rig.vm()
    rig.run(vm.restore(snap))
    trace = [GuestAccess(page=i) for i in range(256)]
    rig.run(vm.vcpu.run_trace(trace))
    for page in range(256):
        assert vm.handler.observed_value(page) == contents.get(page, 0)
