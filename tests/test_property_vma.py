"""Property-based tests for address-space overlay semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host import ANONYMOUS, AddressSpace, FileBacking
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore

SPACE_PAGES = 256


@st.composite
def mapping_sequences(draw):
    """A random sequence of anonymous/file MAP_FIXED mappings."""
    count = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=SPACE_PAGES - 1))
        npages = draw(
            st.integers(min_value=1, max_value=SPACE_PAGES - start)
        )
        is_file = draw(st.booleans())
        file_start = (
            draw(st.integers(min_value=0, max_value=SPACE_PAGES - npages))
            if is_file
            else 0
        )
        ops.append((start, npages, is_file, file_start))
    return ops


def build_space(ops):
    env = Environment()
    device = BlockDevice(env, DeviceSpec("d", 100, 10, 1000, 1e6))
    store = FileStore(env, device)
    backing_file = store.create(
        "mem", SPACE_PAGES, pages={i: i + 1 for i in range(SPACE_PAGES)}
    )
    space = AddressSpace(SPACE_PAGES)
    for start, npages, is_file, file_start in ops:
        if is_file:
            space.mmap_file(start, npages, backing_file, file_start)
        else:
            space.mmap_anonymous(start, npages)
    return space, backing_file, ops


@given(mapping_sequences())
@settings(max_examples=80)
def test_vmas_never_overlap_and_stay_sorted(ops):
    space, _, _ = build_space(ops)
    vmas = space.vmas()
    for left, right in zip(vmas, vmas[1:]):
        assert left.end <= right.start
    assert [v.start for v in vmas] == sorted(v.start for v in vmas)


@given(mapping_sequences())
@settings(max_examples=80)
def test_last_mapping_wins(ops):
    """MAP_FIXED semantics: each page is backed by the most recent
    mapping that covered it."""
    space, backing_file, ops = build_space(ops)
    for page in range(SPACE_PAGES):
        expected = None
        for start, npages, is_file, file_start in ops:
            if start <= page < start + npages:
                expected = (is_file, file_start + (page - start))
        vma = space.resolve(page)
        if expected is None:
            assert vma is None
            continue
        is_file, file_page = expected
        if is_file:
            assert isinstance(vma.backing, FileBacking)
            assert vma.file_page(page) == file_page
        else:
            assert vma.backing is ANONYMOUS


@given(mapping_sequences())
@settings(max_examples=60)
def test_gaps_plus_vmas_tile_the_space(ops):
    space, _, _ = build_space(ops)
    covered = sum(v.npages for v in space.vmas())
    gaps = sum(n for _, n in space.coverage_gaps())
    assert covered + gaps == SPACE_PAGES


@given(mapping_sequences())
@settings(max_examples=60)
def test_backing_value_matches_final_mapping(ops):
    space, backing_file, ops = build_space(ops)
    for page in range(0, SPACE_PAGES, 7):
        vma = space.resolve(page)
        if vma is None:
            continue
        value = space.backing_value(page)
        if vma.backing is ANONYMOUS:
            assert value == 0
        else:
            assert value == backing_file.page_value(vma.file_page(page))
