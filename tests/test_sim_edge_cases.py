"""Edge-case tests for the simulation kernel."""

import pytest

from repro.sim import (
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
)


def test_any_of_with_failing_first_child_propagates():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1)
        raise RuntimeError("first")

    def good():
        yield env.timeout(10)
        return "ok"

    def waiter():
        try:
            yield env.any_of([env.process(bad()), env.process(good())])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run(until=20)
    assert caught == ["first"]


def test_any_of_requires_children():
    env = Environment()
    with pytest.raises(SimulationError):
        AnyOf(env, [])


def test_all_of_with_failing_child_propagates():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(5)
        raise ValueError("child failed")

    def good():
        yield env.timeout(1)

    def waiter():
        try:
            yield env.all_of([env.process(good()), env.process(bad())])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run(until=20)
    assert caught == ["child failed"]


def test_all_of_with_already_failed_child():
    env = Environment()
    failed = env.event()
    failed.fail(ValueError("pre-failed"))
    env.run(until=0)  # process the failure event
    caught = []

    def waiter():
        try:
            yield env.all_of([failed])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run(until=1)
    assert caught == ["pre-failed"]


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def waiter():
        req = res.request()
        try:
            yield req
            log.append("granted")
        except Interrupt:
            log.append("interrupted")
            res.release(req)  # cancel the queued request

    env.process(holder())
    waiting = env.process(waiter())

    def interrupter():
        yield env.timeout(10)
        waiting.interrupt()

    env.process(interrupter())
    env.run()
    assert log == ["interrupted"]
    assert res.queue_length == 0


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_cross_environment_event_rejected():
    env_a = Environment()
    env_b = Environment()
    foreign = Event(env_b)

    def proc():
        yield foreign

    env_a.process(proc())
    with pytest.raises(SimulationError):
        env_a.run()


def test_run_until_event_with_drained_queue_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=never)


def test_zero_delay_timeout_fires_same_instant():
    env = Environment()
    times = []

    def proc():
        yield env.timeout(0)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [0.0]


def test_interleaved_resources_and_timeouts_deterministic():
    def build():
        env = Environment()
        res = Resource(env, capacity=2)
        order = []

        def worker(tag, hold):
            req = res.request()
            yield req
            order.append((tag, env.now))
            yield env.timeout(hold)
            res.release(req)

        for tag, hold in [("a", 7), ("b", 3), ("c", 5), ("d", 1)]:
            env.process(worker(tag, hold))
        env.run()
        return order

    assert build() == build()
    order = build()
    assert [tag for tag, _ in order] == ["a", "b", "c", "d"]
    # c starts when b (the shorter holder) releases at t=3.
    assert dict(order)["c"] == 3.0


# -- advance_to (the service core's incremental clock) -----------------


def test_advance_to_zero_length_window_dispatches_same_instant_only():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(5)
        fired.append(env.now)

    env.process(proc())
    # A zero-length window moves no time but does dispatch events
    # already scheduled at the current instant — here the process
    # start, which runs up to its first yield.
    assert env.advance_to(env.now) == 1
    assert env.now == 0.0
    assert fired == []
    # Nothing left at this instant: now it is a true no-op.
    assert env.advance_to(env.now) == 0


def test_advance_to_past_deadline_raises():
    env = Environment()
    env.advance_to(10.0)
    assert env.now == 10.0
    with pytest.raises(SimulationError):
        env.advance_to(5.0)


def test_advance_to_processes_events_exactly_on_horizon():
    env = Environment()
    fired = []

    def proc(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    env.process(proc(10))
    env.process(proc(20))
    env.process(proc(20.0000001))
    # An event landing exactly on the horizon fires inside this
    # window, not the next one.
    env.advance_to(20.0)
    assert fired == [10.0, 20.0]
    assert env.now == 20.0
    env.advance_to(30.0)
    assert fired == [10.0, 20.0, 20.0000001]


def test_advance_to_sets_clock_even_with_no_events():
    env = Environment()
    assert env.advance_to(123.5) == 0
    assert env.now == 123.5


def test_advance_to_windows_chunking_invariant():
    """The same workload advanced in one window or many lands on the
    same clock, event count, and firing order."""

    def build():
        env = Environment()
        fired = []

        def proc(delay, tag):
            yield env.timeout(delay)
            fired.append((tag, env.now))

        for i, delay in enumerate((3, 7, 7, 11, 29)):
            env.process(proc(delay, i))
        return env, fired

    one_env, one_fired = build()
    total = one_env.advance_to(40.0)

    many_env, many_fired = build()
    chunked = 0
    for horizon in (1.0, 7.0, 7.0, 12.5, 40.0):
        chunked += many_env.advance_to(horizon)
    assert many_env.now == one_env.now
    assert chunked == total
    assert many_fired == one_fired
