"""Tests for the declarative fault-plan data model."""

import json

import pytest

from repro.faults import (
    SCOPE_ALL,
    SCOPE_SHARED,
    DeviceFault,
    FaultPlan,
    HostCrash,
    SnapshotCorruption,
)


def full_plan():
    return FaultPlan(
        device_faults=[
            DeviceFault(
                scope=SCOPE_ALL,
                start_us=1_000.0,
                duration_us=5_000.0,
                latency_factor=4.0,
                bandwidth_factor=0.5,
                iops_factor=0.25,
                error_rate=0.01,
            ),
            DeviceFault(scope=SCOPE_SHARED, start_us=0.0),
            DeviceFault(scope="host2", start_us=9.0, latency_factor=2.0),
        ],
        host_crashes=[
            HostCrash(host="host0", at_us=2_000.0, reboot_after_us=500.0),
            HostCrash(host="host1", at_us=3_000.0),
        ],
        corruptions=[
            SnapshotCorruption(host="host0", function="f0", at_us=100.0),
        ],
    )


# -- construction and validation --------------------------------------


def test_empty_plan_is_empty_and_lengthless():
    plan = FaultPlan.empty()
    assert plan.is_empty
    assert len(plan) == 0
    assert plan.device_faults == ()
    assert plan.host_crashes == ()
    assert plan.corruptions == ()


def test_plan_stores_tuples_and_counts_faults():
    plan = full_plan()
    assert not plan.is_empty
    assert len(plan) == 6
    assert isinstance(plan.device_faults, tuple)
    assert isinstance(plan.host_crashes, tuple)
    assert isinstance(plan.corruptions, tuple)


def test_single_fault_makes_plan_non_empty():
    crash_only = FaultPlan(host_crashes=[HostCrash(host="h", at_us=0.0)])
    assert not crash_only.is_empty
    assert len(crash_only) == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(scope="h", start_us=-1.0),
        dict(scope="h", start_us=0.0, duration_us=0.0),
        dict(scope="h", start_us=0.0, duration_us=-5.0),
        dict(scope="h", start_us=0.0, latency_factor=0.0),
        dict(scope="h", start_us=0.0, bandwidth_factor=-1.0),
        dict(scope="h", start_us=0.0, iops_factor=0.0),
        dict(scope="h", start_us=0.0, error_rate=1.5),
        dict(scope="h", start_us=0.0, error_rate=-0.1),
    ],
)
def test_device_fault_validation(kwargs):
    with pytest.raises(ValueError):
        DeviceFault(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(host="h", at_us=-1.0),
        dict(host="h", at_us=0.0, reboot_after_us=0.0),
        dict(host="h", at_us=0.0, reboot_after_us=-1.0),
    ],
)
def test_host_crash_validation(kwargs):
    with pytest.raises(ValueError):
        HostCrash(**kwargs)


def test_corruption_validation():
    with pytest.raises(ValueError):
        SnapshotCorruption(host="h", function="f", at_us=-0.5)


def test_faults_are_immutable():
    fault = DeviceFault(scope="h", start_us=0.0)
    with pytest.raises(Exception):
        fault.start_us = 5.0  # type: ignore[misc]


# -- serialisation -----------------------------------------------------


def test_as_dict_round_trips_through_json():
    plan = full_plan()
    doc = json.loads(json.dumps(plan.as_dict()))
    assert FaultPlan.from_dict(doc) == plan


def test_empty_plan_round_trips():
    doc = FaultPlan.empty().as_dict()
    assert doc == {
        "device_faults": [],
        "host_crashes": [],
        "corruptions": [],
        "fail_slows": [],
    }
    restored = FaultPlan.from_dict(doc)
    assert restored.is_empty
    assert restored == FaultPlan.empty()


def test_from_dict_tolerates_missing_sections():
    plan = FaultPlan.from_dict({})
    assert plan.is_empty
    partial = FaultPlan.from_dict(
        {"host_crashes": [{"host": "h3", "at_us": 7.0}]}
    )
    assert partial.host_crashes == (HostCrash(host="h3", at_us=7.0),)
    assert partial.device_faults == ()


def test_as_dict_is_deterministic():
    a = json.dumps(full_plan().as_dict(), sort_keys=True)
    b = json.dumps(full_plan().as_dict(), sort_keys=True)
    assert a == b
