"""Tests for the live service core (repro.service).

The two load-bearing properties:

* batch-through-service bit-parity — ``ClusterSimulator.run`` now
  replays a canned command stream through :class:`ClusterService` and
  must produce exactly the report the historical inline driver did;
* journal determinism — replaying a journal reproduces every digest
  bit-for-bit, twice.
"""

import json

import pytest

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.fleet import generate_arrivals, synthesize_fleet
from repro.fleet.workload import (
    Arrival,
    JsonLinesArrivalSource,
    PoissonArrivalSource,
    TraceArrivalSource,
)
from repro.service import (
    AddHostCommand,
    AdvanceCommand,
    ArmCommand,
    CommandError,
    DisarmCommand,
    DrainCommand,
    DrainHostCommand,
    InjectCommand,
    JournalWriter,
    ServiceError,
    SetKeepaliveCommand,
    SnapshotTelemetryCommand,
    StatusCommand,
    SwapPlacementCommand,
    UndrainHostCommand,
    build_service,
    command_from_dict,
    parse_command,
    replay_journal,
)
from repro.service.core import ClusterService

HOUR_US = 3_600_000_000.0


def _small_fleet(seed=5, functions=4):
    return synthesize_fleet(
        functions, seed=seed, profile_names=("json", "pyaes")
    )


def _checksum(report):
    return round(sum(s.latency_us for s in report.served), 2)


# -- batch parity ------------------------------------------------------


def test_run_batch_matches_repeated_runs_bit_for_bit():
    fleet = _small_fleet()
    trace = generate_arrivals(fleet, 0.25 * HOUR_US, seed=5)
    config = ClusterConfig(num_hosts=2, seed=3)
    first = ClusterSimulator(fleet, config).run(trace)
    second = ClusterSimulator(fleet, config).run(trace)
    assert len(first.served) == len(second.served)
    assert _checksum(first) == _checksum(second)
    assert [s.latency_us for s in first.served] == [
        s.latency_us for s in second.served
    ]


def test_incremental_advance_equals_batch():
    """Serving a trace through many small advance windows produces the
    same invocations and latencies as one batch drain."""
    fleet = _small_fleet()
    trace = generate_arrivals(fleet, 0.25 * HOUR_US, seed=5)
    config = ClusterConfig(num_hosts=2, seed=3)

    batch = ClusterSimulator(fleet, config).run(trace)

    service = ClusterService(
        ClusterSimulator(fleet, config),
        arrival_source=TraceArrivalSource(trace),
    )
    for _ in range(40):
        service.execute(AdvanceCommand(ms=30_000.0))
    report = service.execute(DrainCommand()) and service.report
    assert len(report.served) == len(batch.served)
    assert _checksum(report) == _checksum(batch)


def test_poisson_source_matches_generate_arrivals_chunking():
    fleet = _small_fleet(seed=9, functions=6)
    horizon = 0.5 * HOUR_US
    batch = generate_arrivals(fleet, horizon, seed=4).arrivals
    source = PoissonArrivalSource(fleet, seed=4)
    streamed = []
    # Uneven chunk boundaries must not change the stream.
    for rel in (1e6, 1e6, 3e8, 9e8, horizon / 2, horizon - 1e-9):
        streamed.extend(source.take_until(rel))
    streamed = [a for a in streamed if a.time_us < horizon]
    assert [(a.time_us, a.function) for a in streamed] == [
        (a.time_us, a.function) for a in batch
    ]


def test_jsonlines_source_streams_and_rejects_unsorted():
    lines = [
        "# comment",
        "",
        json.dumps({"time_us": 10.0, "function": "a"}),
        json.dumps({"time_us": 20.5, "function": "b"}),
    ]
    source = JsonLinesArrivalSource(iter(lines))
    assert [a.function for a in source.take_until(15.0)] == ["a"]
    assert [a.function for a in source.take_until(30.0)] == ["b"]
    assert source.take_until(1e9) == []

    bad = JsonLinesArrivalSource(
        iter(
            [
                json.dumps({"time_us": 10.0, "function": "a"}),
                json.dumps({"time_us": 5.0, "function": "b"}),
            ]
        )
    )
    # The regression is detected as soon as the reader's one-record
    # lookahead reaches the out-of-order record.
    with pytest.raises(ValueError):
        bad.take_until(12.0)


# -- commands ----------------------------------------------------------


def _service(**spec_overrides):
    spec = {
        "functions": 4,
        "fleet_seed": 5,
        "hosts": 2,
        "seed": 3,
        "source": {"kind": "trace", "duration_us": 0.25 * HOUR_US, "seed": 5},
    }
    spec.update(spec_overrides)
    return build_service(spec)


def test_swap_placement_takes_effect_live():
    service = _service()
    service.execute(AdvanceCommand(ms=60_000.0))
    result = service.execute(SwapPlacementCommand(policy="round-robin"))
    assert result["placement"] == "round-robin"
    assert service.simulator.config.placement == "round-robin"
    assert service.simulator._hot_placement.name == "round-robin"
    service.execute(AdvanceCommand(ms=60_000.0))
    service.execute(DrainCommand())
    assert service.report.placement == "round-robin"


def test_add_host_enters_rotation_and_status_reports_it():
    service = _service()
    service.execute(AdvanceCommand(ms=30_000.0))
    result = service.execute(AddHostCommand())
    assert result["host"] == "host2"
    assert result["hosts"] == 3
    status = service.execute(StatusCommand())
    assert [h["host"] for h in status["hosts"]] == [
        "host0",
        "host1",
        "host2",
    ]
    # Local tier: the new host preps in the background before joining.
    assert result["drained"] is True
    service.execute(AdvanceCommand(ms=600_000.0))
    status = service.execute(StatusCommand())
    assert status["hosts"][2]["drained"] is False
    service.execute(DrainCommand())


def test_drain_and_undrain_host():
    service = _service()
    service.execute(AdvanceCommand(ms=120_000.0))
    result = service.execute(DrainHostCommand(host="host1"))
    assert result["host"] == "host1"
    status = service.execute(StatusCommand())
    host1 = status["hosts"][1]
    assert host1["drained"] is True and host1["healthy"] is False
    assert host1["idle_vms"] == 0
    service.execute(UndrainHostCommand(host="host1"))
    status = service.execute(StatusCommand())
    assert status["hosts"][1]["drained"] is False
    assert status["hosts"][1]["healthy"] is True
    service.execute(DrainCommand())


def test_arm_and_disarm_mid_run():
    service = _service()
    service.execute(AdvanceCommand(ms=60_000.0))
    assert service.simulator._armed is False
    plan = {
        "device_faults": [
            {
                "scope": "host0",
                "start_us": 1_000_000.0,
                "duration_us": 600_000_000.0,
                "latency_factor": 50.0,
            }
        ]
    }
    result = service.execute(ArmCommand(plan=plan))
    assert result["faults"] == 1
    assert service.simulator._armed is True
    # Let the window open, then disarm: the degradation must heal.
    service.execute(AdvanceCommand(ms=30_000.0))
    host0 = service.simulator._hosts[0].host
    assert host0.device.degradation is not None
    service.execute(DisarmCommand())
    assert host0.device.degradation is None
    service.execute(AdvanceCommand(ms=60_000.0))
    service.execute(DrainCommand())


def test_set_keepalive_live():
    service = _service()
    service.execute(SetKeepaliveCommand(ttl_ms=1_000.0))
    assert service.simulator.config.keep_alive_ttl_us == 1_000_000.0
    service.execute(AdvanceCommand(ms=60_000.0))
    service.execute(DrainCommand())


def test_commands_after_drain_are_rejected():
    service = _service()
    service.execute(DrainCommand())
    with pytest.raises(ServiceError):
        service.execute(AdvanceCommand(ms=1.0))
    # Read-only probes stay available.
    assert service.execute(StatusCommand())["finished"] is True
    service.execute(SnapshotTelemetryCommand())


def test_inject_wakes_sleeping_pump_for_earlier_arrival():
    service = _service(source={"kind": "none"})
    service.execute(InjectCommand(arrivals=((5_000_000.0, "fn0001"),)))
    service.execute(AdvanceCommand(ms=1_000.0))
    # The pump now sleeps on the 5 s arrival; a 2 s arrival must
    # preempt that sleep and serve first.
    service.execute(InjectCommand(arrivals=((2_000_000.0, "fn0002"),)))
    service.execute(AdvanceCommand(ms=10_000.0))
    service.execute(DrainCommand())
    served = [(s.time_us, s.function) for s in service.report.served]
    assert served == [
        (2_000_000.0, "fn0002"),
        (5_000_000.0, "fn0001"),
    ]


# -- wire forms --------------------------------------------------------


def test_command_text_and_dict_round_trip():
    lines = [
        "advance 500",
        "inject 1000:fn0001 2500.5:fn0002",
        "add-host",
        "drain-host host3",
        "undrain-host host3",
        "swap-placement locality",
        'arm {"host_crashes": [{"host": "host0", "at_us": 9.0}]}',
        "disarm",
        "set-keepalive 30000",
        "snapshot-telemetry",
        "status",
        "drain",
    ]
    for line in lines:
        command = parse_command(line)
        assert command_from_dict(command.to_dict()) == command


def test_parse_command_rejects_garbage():
    for line in ["", "frobnicate", "advance", "inject", "inject nope",
                 "arm not-json", "set-keepalive -5"]:
        with pytest.raises(CommandError):
            parse_command(line)


# -- journal replay ----------------------------------------------------


def test_journal_replay_is_bit_identical_twice(tmp_path):
    path = tmp_path / "svc.journal"
    spec = {
        "functions": 4,
        "fleet_seed": 5,
        "hosts": 2,
        "seed": 3,
        "source": {"kind": "trace", "duration_us": 0.25 * HOUR_US, "seed": 5},
        "sampler_interval_us": 60_000_000.0,
    }
    journal = JournalWriter(str(path))
    service = build_service(spec, journal=journal)
    for line in [
        "advance 120000",
        "swap-placement round-robin",
        "advance 120000",
        "add-host",
        "snapshot-telemetry",
        "advance 240000",
        "drain-host host1",
        "advance 120000",
        "inject 700000000:fn0001",
        "advance 120000",
        "snapshot-telemetry",
        "drain",
    ]:
        service.execute(parse_command(line))
    journal.close()
    live_checksum = _checksum(service.report)

    first = replay_journal(str(path))
    assert first.ok, first.mismatches
    assert first.entries == 12
    assert _checksum(first.service.report) == live_checksum

    second = replay_journal(str(path))
    assert second.ok, second.mismatches
    assert _checksum(second.service.report) == live_checksum


def test_journal_replay_detects_divergence(tmp_path):
    path = tmp_path / "svc.journal"
    journal = JournalWriter(str(path))
    service = build_service(
        {
            "functions": 4,
            "fleet_seed": 5,
            "hosts": 2,
            "seed": 3,
            "source": {
                "kind": "trace",
                "duration_us": 0.25 * HOUR_US,
                "seed": 5,
            },
        },
        journal=journal,
    )
    service.execute(AdvanceCommand(ms=300_000.0))
    service.execute(DrainCommand())
    journal.close()

    lines = path.read_text().splitlines()
    entry = json.loads(lines[1])
    assert entry["digest"]["served"] > 0
    entry["digest"]["served"] += 1
    lines[1] = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")

    outcome = replay_journal(str(path))
    assert not outcome.ok
    assert outcome.mismatches[0]["field"] == "served"
