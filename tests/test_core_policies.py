"""Unit tests for the policy enum's derived properties."""

from repro.core.policies import ABLATION_POLICIES, MAIN_POLICIES, Policy


def test_faasnap_family():
    assert Policy.FAASNAP.is_faasnap_family
    assert Policy.FAASNAP_CONCURRENT.is_faasnap_family
    assert Policy.FAASNAP_PER_REGION.is_faasnap_family
    assert not Policy.REAP.is_faasnap_family
    assert not Policy.FIRECRACKER.is_faasnap_family
    assert not Policy.WARM.is_faasnap_family
    assert not Policy.CACHED.is_faasnap_family


def test_loader_usage_matches_family():
    for policy in Policy:
        assert policy.uses_loader == policy.is_faasnap_family


def test_per_region_mapping_flags():
    assert Policy.FAASNAP.uses_per_region_mapping
    assert Policy.FAASNAP_PER_REGION.uses_per_region_mapping
    assert not Policy.FAASNAP_CONCURRENT.uses_per_region_mapping
    assert not Policy.FIRECRACKER.uses_per_region_mapping


def test_loading_set_file_only_full_faasnap():
    assert Policy.FAASNAP.uses_loading_set_file
    for policy in Policy:
        if policy is not Policy.FAASNAP:
            assert not policy.uses_loading_set_file


def test_record_phase_requirements():
    assert Policy.REAP.needs_record_phase
    assert Policy.FAASNAP.needs_record_phase
    assert not Policy.FIRECRACKER.needs_record_phase
    assert not Policy.WARM.needs_record_phase


def test_policy_lists():
    assert MAIN_POLICIES == [
        Policy.FIRECRACKER,
        Policy.REAP,
        Policy.FAASNAP,
        Policy.CACHED,
    ]
    assert ABLATION_POLICIES[0] is Policy.FIRECRACKER
    assert ABLATION_POLICIES[-1] is Policy.FAASNAP


def test_policy_values_roundtrip():
    for policy in Policy:
        assert Policy(policy.value) is policy
