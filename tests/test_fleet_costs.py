"""Tests for the measured cost model."""

import pytest

from repro.core.policies import Policy
from repro.fleet.costs import CostModel


@pytest.fixture(scope="module")
def model():
    return CostModel()


def test_costs_ordering(model):
    """Warm < snapshot < cold, for every restore policy."""
    for policy in (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP):
        costs = model.costs("json", policy)
        assert costs.warm_us < costs.snapshot_us < costs.cold_us


def test_faasnap_snapshot_cheaper_than_firecracker(model):
    faasnap = model.costs("json", Policy.FAASNAP)
    firecracker = model.costs("json", Policy.FIRECRACKER)
    assert faasnap.snapshot_us < firecracker.snapshot_us
    # Warm and cold costs are policy-independent (up to float
    # accumulation at different absolute clock offsets).
    assert faasnap.warm_us == pytest.approx(firecracker.warm_us)
    assert faasnap.cold_us == pytest.approx(firecracker.cold_us)


def test_costs_cached(model):
    first = model.costs("json", Policy.FAASNAP)
    second = model.costs("json", Policy.FAASNAP)
    assert first is second


def test_warm_memory_reasonable(model):
    costs = model.costs("json", Policy.FAASNAP)
    # A warm 2 GB guest with a ~13 MB working set plus boot/runtime
    # residency: between 100 MB and 2 GB.
    assert 100 < costs.warm_memory_mb < 2048


def test_start_cost_lookup(model):
    costs = model.costs("json", Policy.FAASNAP)
    assert costs.start_cost_us("warm") == costs.warm_us
    assert costs.start_cost_us("snapshot") == costs.snapshot_us
    assert costs.start_cost_us("cold") == costs.cold_us
    with pytest.raises(KeyError):
        costs.start_cost_us("lukewarm")
