"""Property-based tests for the fault subsystem's invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.faults import (
    FaultPlan,
    HedgePolicy,
    HedgeTracker,
    HostCrash,
    RecoveryPolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.fleet.scheduler import InvocationOutcome, StartKind
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

SECOND = 1_000_000.0


# -- backoff bounds ----------------------------------------------------


@given(
    base=st.floats(min_value=0.0, max_value=1e7),
    multiplier=st.floats(min_value=1.0, max_value=10.0),
    max_backoff=st.floats(min_value=0.0, max_value=1e7),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    attempt=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=200, deadline=None)
def test_backoff_always_within_cap(
    base, multiplier, max_backoff, jitter, attempt, seed
):
    policy = RetryPolicy(
        base_backoff_us=base,
        multiplier=multiplier,
        max_backoff_us=max_backoff,
        jitter=jitter,
    )
    backoff = policy.backoff_us(attempt, random.Random(seed))
    assert 0.0 <= backoff <= max_backoff


# -- retry budget conservation -----------------------------------------


@given(
    min_budget=st.floats(min_value=0.0, max_value=50.0),
    ratio=st.floats(min_value=0.0, max_value=2.0),
    ops=st.lists(st.booleans(), max_size=300),
)
@settings(max_examples=200, deadline=None)
def test_budget_spend_bounded_by_earnings(min_budget, ratio, ops):
    """``spent <= min_budget + ratio * arrivals`` for any interleaving
    of arrivals (True) and retry requests (False)."""
    budget = RetryBudget(min_budget=min_budget, ratio=ratio)
    for is_arrival in ops:
        if is_arrival:
            budget.on_arrival()
        else:
            budget.try_spend()
        # Conservation holds at every step, not just at the end.
        earned = budget.min_budget + budget.ratio * budget.arrivals
        assert budget.spent <= earned + 1e-9
        assert abs(budget.tokens - (earned - budget.spent)) < 1e-6
        assert budget.tokens >= 0.0


# -- hedge tracker -----------------------------------------------------


@given(
    latencies=st.lists(
        st.floats(min_value=0.0, max_value=1e8), max_size=100
    ),
    min_samples=st.integers(min_value=1, max_value=30),
    floor=st.floats(min_value=0.0, max_value=1e6),
    window=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=200, deadline=None)
def test_hedge_threshold_floor_and_window(
    latencies, min_samples, floor, window
):
    policy = HedgePolicy(
        enabled=True, min_samples=min_samples, floor_us=floor
    )
    tracker = HedgeTracker(policy, window=window)
    for latency in latencies:
        tracker.record(latency)
        assert tracker.samples <= window
    threshold = tracker.threshold_us()
    if tracker.samples < min_samples:
        assert threshold is None
    else:
        assert threshold >= floor
        # The nearest-rank percentile is one of the observations (or
        # the floor): never an extrapolation beyond the max sample.
        assert threshold <= max(max(tracker._latencies), floor)


# -- every arrival accounted exactly once under faults -----------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=0.0, max_value=3.0 * SECOND),
    reboot_after=st.floats(min_value=0.1 * SECOND, max_value=2.0 * SECOND),
)
@settings(max_examples=8, deadline=None)
def test_arrivals_counted_exactly_once_under_crashes(
    seed, crash_at, reboot_after
):
    """Whatever the crash timing, every arrival ends in exactly one
    outcome, attempts are consistent with it, and hedging/retries
    never double-record an arrival."""
    fleet = [
        FleetFunction(
            name=f"f{i}", profile_name="json", mean_interarrival_us=SECOND
        )
        for i in range(2)
    ]
    arrivals = [
        Arrival(time_us=i * 500_000.0, function=f"f{i % 2}")
        for i in range(6)
    ]
    trace = ArrivalTrace(
        arrivals=arrivals, duration_us=arrivals[-1].time_us + 1
    )
    config = ClusterConfig(
        num_hosts=2,
        placement="round-robin",
        recovery=RecoveryPolicy.full(),
        seed=seed,
    )
    plan = FaultPlan(
        host_crashes=[
            HostCrash(
                host="host0", at_us=crash_at, reboot_after_us=reboot_after
            )
        ]
    )
    report = ClusterSimulator(fleet, config).run(trace, fault_plan=plan)

    assert len(report.served) == len(trace)
    counts = report.outcome_counts()
    assert sum(counts.values()) == len(trace)
    # One record per arrival (time, function) — nothing duplicated
    # by a hedge or retry, nothing dropped by a crash.
    keys = sorted((s.time_us, s.function) for s in report.served)
    expected = sorted((a.time_us, a.function) for a in arrivals)
    assert keys == expected
    for s in report.served:
        if s.outcome is InvocationOutcome.SHED:
            assert s.attempts == 0 and s.kind is None
        elif s.outcome is InvocationOutcome.FAILED:
            assert s.attempts >= 1 and s.kind is None
        elif s.outcome is InvocationOutcome.OK:
            assert s.attempts >= 1 and s.kind is not None
        else:
            assert s.attempts >= 2 and s.kind is not None
    # Per-host attribution stays consistent with the served list.
    assert sum(
        stats.invocations for stats in report.host_stats.values()
    ) >= counts["ok"] + counts["retried"] + counts["hedge-won"]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=2.4 * SECOND, max_value=3.6 * SECOND),
)
@settings(max_examples=6, deadline=None)
def test_crashed_pool_never_serves_warm(seed, crash_at):
    """A warm VM lost to a crash is never reused: after the crash and
    until some invocation completes post-reboot, no warm start can
    happen on the crashed host."""
    fleet = [
        FleetFunction(
            name="f0", profile_name="json", mean_interarrival_us=SECOND
        )
    ]
    # First arrival cold-boots (~2.3 s) and parks a warm VM; the crash
    # lands while it idles; the second arrival must not reuse it.
    arrivals = [
        Arrival(time_us=0.0, function="f0"),
        Arrival(time_us=4.0 * SECOND, function="f0"),
    ]
    trace = ArrivalTrace(arrivals=arrivals, duration_us=4.0 * SECOND + 1)
    config = ClusterConfig(
        num_hosts=1,
        keep_alive_ttl_us=60 * SECOND,
        recovery=RecoveryPolicy(retry=RetryPolicy(enabled=True)),
        seed=seed,
    )
    plan = FaultPlan(
        host_crashes=[
            HostCrash(
                host="host0", at_us=crash_at, reboot_after_us=0.2 * SECOND
            )
        ]
    )
    report = ClusterSimulator(fleet, config).run(trace, fault_plan=plan)
    first, second = report.served
    if report.host_stats["host0"].crash_vm_losses:
        # The pool was drained by the crash: no warm reuse possible.
        assert second.kind is not StartKind.WARM
