"""Unit and integration tests for the fleet scheduler."""

import pytest

from repro.core.policies import Policy
from repro.fleet.costs import FunctionCosts
from repro.fleet.scheduler import (
    FleetConfig,
    FleetReport,
    FleetSimulator,
    ServedInvocation,
    StartKind,
)
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

SECOND = 1_000_000.0
MINUTE = 60 * SECOND

#: Synthetic cost table (ms-scale numbers shaped like the paper's:
#: warm ~ compute, snapshot ~ 5x warm, cold ~ seconds).
COSTS = FunctionCosts(
    profile_name="json",
    policy=Policy.FAASNAP,
    warm_us=100_000.0,
    snapshot_us=250_000.0,
    cold_us=2_500_000.0,
    warm_memory_mb=200.0,
)


def make_sim(ttl=15 * MINUTE, budget=10_000.0, snapshots=True, names=("f",)):
    fleet = [
        FleetFunction(
            name=name, profile_name="json", mean_interarrival_us=MINUTE
        )
        for name in names
    ]
    config = FleetConfig(
        restore_policy=Policy.FAASNAP,
        keep_alive_ttl_us=ttl,
        memory_budget_mb=budget,
        snapshots_enabled=snapshots,
    )
    costs = {name: COSTS for name in names}
    return FleetSimulator(fleet, config, costs=costs)


def trace(*arrivals):
    items = [Arrival(time_us=t, function=f) for t, f in arrivals]
    return ArrivalTrace(
        arrivals=items, duration_us=max(t for t, _ in arrivals) + 1
    )


def test_first_invocation_is_cold():
    report = make_sim().run(trace((0, "f")))
    assert report.count() == 1
    assert report.served[0].kind is StartKind.COLD
    assert report.served[0].latency_us == COSTS.cold_us


def test_second_invocation_within_ttl_is_warm():
    report = make_sim().run(trace((0, "f"), (10 * SECOND, "f")))
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD, StartKind.WARM]


def test_invocation_during_busy_vm_is_not_warm():
    """A request arriving while the only VM is still serving cannot
    reuse it."""
    report = make_sim().run(trace((0, "f"), (SECOND, "f")))
    # Cold start takes 2.5 s, so at t=1 s the VM is still busy and no
    # snapshot exists yet.
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD, StartKind.COLD]


def test_expired_ttl_falls_back_to_snapshot():
    report = make_sim(ttl=5 * MINUTE).run(
        trace((0, "f"), (10 * SECOND, "f"), (30 * MINUTE, "f"))
    )
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD, StartKind.WARM, StartKind.SNAPSHOT]
    assert report.evictions == 1


def test_snapshots_disabled_falls_back_to_cold():
    report = make_sim(ttl=5 * MINUTE, snapshots=False).run(
        trace((0, "f"), (30 * MINUTE, "f"))
    )
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD, StartKind.COLD]


def test_memory_budget_evicts_lru_other_function():
    sim = make_sim(budget=350.0, names=("a", "b"))
    report = sim.run(
        trace((0, "a"), (5 * SECOND, "b"), (10 * SECOND, "a"))
    )
    # Budget fits one 200 MB VM only: keeping b evicts a, so a's third
    # invocation cannot be warm.
    assert report.evictions >= 1
    assert report.served[2].kind is not StartKind.WARM
    assert max(report.memory_samples_mb) <= 350.0 + 200.0


def test_zero_ttl_never_keeps_warm():
    report = make_sim(ttl=0).run(
        trace((0, "f"), (10 * SECOND, "f"), (20 * SECOND, "f"))
    )
    assert report.count(StartKind.WARM) == 0


def test_report_aggregates():
    report = make_sim().run(
        trace((0, "f"), (10 * SECOND, "f"), (20 * SECOND, "f"))
    )
    assert report.count() == 3
    assert report.fraction(StartKind.WARM) == pytest.approx(2 / 3)
    assert report.mean_latency_us() == pytest.approx(
        (COSTS.cold_us + 2 * COSTS.warm_us) / 3
    )
    assert report.latency_percentile(0) == COSTS.warm_us
    assert report.latency_percentile(99) == COSTS.cold_us
    assert report.mean_memory_mb() > 0


def _report_with_latencies(latencies):
    return FleetReport(
        served=[
            ServedInvocation(
                time_us=float(i),
                function="f",
                kind=StartKind.WARM,
                latency_us=lat,
            )
            for i, lat in enumerate(latencies)
        ]
    )


def test_latency_percentile_nearest_rank():
    """Nearest-rank pinning on a known list: the old ``int(p/100*n)``
    indexing over-read by one at exact boundaries (p50 of 4 samples
    returned the 3rd value instead of the 2nd)."""
    report = _report_with_latencies([30.0, 10.0, 40.0, 20.0])
    assert report.latency_percentile(0) == 10.0
    assert report.latency_percentile(25) == 10.0
    assert report.latency_percentile(50) == 20.0
    assert report.latency_percentile(75) == 30.0
    assert report.latency_percentile(99) == 40.0
    assert report.latency_percentile(100) == 40.0


def test_latency_percentile_single_sample_and_empty():
    assert _report_with_latencies([5.0]).latency_percentile(50) == 5.0
    assert FleetReport().latency_percentile(50) == 0.0


def test_memory_budget_smaller_than_single_vm():
    """A budget that cannot fit even one VM must still serve every
    arrival: the running VM may exceed the budget (there is nothing
    idle to evict), and reusing an already-resident warm VM never
    re-checks the fit — so the single VM survives and keeps serving."""
    sim = make_sim(budget=COSTS.warm_memory_mb / 2)
    arrivals = [(i * MINUTE, "f") for i in range(4)]
    report = sim.run(trace(*arrivals))
    assert report.count() == 4
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD] + [StartKind.WARM] * 3
    assert report.evictions == 0
    # Over-budget by exactly the one irreducible VM, never more.
    assert max(report.memory_samples_mb) == COSTS.warm_memory_mb


def test_zero_ttl_trace_replay_releases_memory():
    sim = make_sim(ttl=0)
    arrivals = [(i * 10 * SECOND, "f") for i in range(5)]
    report = sim.run(trace(*arrivals))
    assert report.count(StartKind.WARM) == 0
    assert report.evictions == 0
    # Memory at each arrival holds only still-running VMs; with 10 s
    # spacing every prior VM has finished and been released.
    assert report.memory_samples_mb == [COSTS.warm_memory_mb] * 5


def test_snapshots_disabled_trace_replay():
    sim = make_sim(ttl=5 * MINUTE, snapshots=False)
    arrivals = [(i * 30 * MINUTE, "f") for i in range(5)]
    report = sim.run(trace(*arrivals))
    assert report.count(StartKind.SNAPSHOT) == 0
    assert report.count(StartKind.COLD) == 5
    assert report.mean_latency_us() == pytest.approx(COSTS.cold_us)


def test_memory_pressure_evicts_least_recently_used_first():
    sim = make_sim(budget=500.0, names=("a", "b", "c"))
    report = sim.run(
        trace(
            (0, "a"),
            (5 * SECOND, "b"),
            (10 * SECOND, "c"),
            (15 * SECOND, "a"),
        )
    )
    # c's start fits only by evicting the LRU idle VM. That must be a
    # (idle since ~2.5 s) and not b (idle since ~7.5 s) — so a's
    # return is a snapshot start, which it could not be had b been
    # evicted instead. a's own return then evicts the next LRU, b.
    assert report.evictions == 2
    assert report.served[3].function == "a"
    assert report.served[3].kind is StartKind.SNAPSHOT


def test_longer_ttl_trades_memory_for_warm_starts():
    arrivals = [(i * 10 * MINUTE, "f") for i in range(20)]
    short = make_sim(ttl=5 * MINUTE).run(trace(*arrivals))
    long = make_sim(ttl=30 * MINUTE).run(trace(*arrivals))
    assert long.count(StartKind.WARM) > short.count(StartKind.WARM)
    assert long.mean_memory_mb() >= short.mean_memory_mb()
    assert long.mean_latency_us() < short.mean_latency_us()


def test_snapshot_tier_beats_cold_only_for_infrequent_functions():
    """The paper's §7.1 argument in one assertion."""
    arrivals = [(i * 30 * MINUTE, "f") for i in range(10)]
    with_snapshots = make_sim(ttl=15 * MINUTE).run(trace(*arrivals))
    without = make_sim(ttl=15 * MINUTE, snapshots=False).run(trace(*arrivals))
    assert with_snapshots.mean_latency_us() < without.mean_latency_us()
    assert with_snapshots.count(StartKind.SNAPSHOT) > 0
