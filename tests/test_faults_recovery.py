"""Unit tests for recovery policies, the retry budget, and hedging."""

import random

import pytest

from repro.core.policies import Policy
from repro.faults import (
    DISABLED_RECOVERY,
    HealthPolicy,
    HedgePolicy,
    HedgeTracker,
    RecoveryPolicy,
    RetryBudget,
    RetryPolicy,
    SheddingPolicy,
)


# -- RetryPolicy -------------------------------------------------------


def test_backoff_grows_exponentially_without_jitter():
    policy = RetryPolicy(
        enabled=True,
        base_backoff_us=10.0,
        multiplier=2.0,
        max_backoff_us=1_000.0,
        jitter=0.0,
    )
    rng = random.Random(0)
    assert policy.backoff_us(1, rng) == 10.0
    assert policy.backoff_us(2, rng) == 20.0
    assert policy.backoff_us(3, rng) == 40.0


def test_backoff_clamps_at_max():
    policy = RetryPolicy(
        base_backoff_us=100.0, multiplier=10.0, max_backoff_us=250.0,
        jitter=0.0,
    )
    rng = random.Random(0)
    assert policy.backoff_us(5, rng) == 250.0


def test_backoff_jitter_only_shrinks():
    policy = RetryPolicy(
        base_backoff_us=100.0, multiplier=1.0, max_backoff_us=100.0,
        jitter=0.5,
    )
    rng = random.Random(42)
    values = [policy.backoff_us(1, rng) for _ in range(50)]
    assert all(50.0 <= v <= 100.0 for v in values)
    assert len(set(values)) > 1  # actually randomised


def test_backoff_attempts_are_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError):
        policy.backoff_us(0, random.Random(0))


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_attempts=0),
        dict(base_backoff_us=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.5),
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# -- RetryBudget -------------------------------------------------------


def test_budget_starts_at_min_and_earns_per_arrival():
    budget = RetryBudget(min_budget=2.0, ratio=0.5)
    assert budget.tokens == 2.0
    budget.on_arrival()
    budget.on_arrival()
    assert budget.tokens == 3.0
    assert budget.arrivals == 2


def test_budget_spend_and_deny():
    budget = RetryBudget(min_budget=1.0, ratio=0.0)
    assert budget.try_spend()
    assert budget.spent == 1
    assert not budget.try_spend()
    assert budget.denied == 1
    assert budget.tokens == 0.0


def test_budget_fractional_tokens_do_not_spend():
    budget = RetryBudget(min_budget=0.0, ratio=0.3)
    budget.on_arrival()
    budget.on_arrival()
    assert not budget.try_spend()  # 0.6 tokens < 1
    budget.on_arrival()
    budget.on_arrival()
    assert budget.try_spend()  # 1.2 tokens


def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(min_budget=-1.0)
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1)


# -- HedgeTracker ------------------------------------------------------


def test_hedge_threshold_none_below_min_samples():
    tracker = HedgeTracker(HedgePolicy(enabled=True, min_samples=5))
    for latency in (10.0, 20.0, 30.0, 40.0):
        tracker.record(latency)
    assert tracker.threshold_us() is None
    tracker.record(50.0)
    assert tracker.threshold_us() is not None


def test_hedge_threshold_percentile_and_floor():
    policy = HedgePolicy(
        enabled=True, percentile=50.0, min_samples=4, floor_us=0.0,
        multiplier=1.0,
    )
    tracker = HedgeTracker(policy)
    for latency in (10.0, 20.0, 30.0, 40.0):
        tracker.record(latency)
    # Nearest-rank p50 of 4 samples is the 2nd smallest.
    assert tracker.threshold_us() == 20.0
    floored = HedgeTracker(
        HedgePolicy(
            enabled=True, percentile=50.0, min_samples=4, floor_us=500.0
        )
    )
    for latency in (10.0, 20.0, 30.0, 40.0):
        floored.record(latency)
    assert floored.threshold_us() == 500.0


def test_hedge_tracker_window_is_bounded():
    tracker = HedgeTracker(HedgePolicy(enabled=True, min_samples=1), window=8)
    for i in range(100):
        tracker.record(float(i))
    assert tracker.samples == 8


def test_hedge_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(percentile=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(min_samples=0)
    with pytest.raises(ValueError):
        HedgePolicy(multiplier=0.0)


# -- Health / shedding / top-level policy ------------------------------


def test_health_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(check_interval_us=0.0)
    with pytest.raises(ValueError):
        HealthPolicy(error_threshold=0)
    with pytest.raises(ValueError):
        HealthPolicy(window_us=-1.0)


def test_shedding_policy_validation_and_enabled():
    assert not SheddingPolicy().enabled
    assert SheddingPolicy(max_queue_depth=8).enabled
    assert SheddingPolicy(degraded_queue_depth=4).enabled
    with pytest.raises(ValueError):
        SheddingPolicy(max_queue_depth=0)
    with pytest.raises(ValueError):
        SheddingPolicy(max_queue_depth=4, degraded_queue_depth=8)
    assert SheddingPolicy().degraded_policy is Policy.FIRECRACKER


def test_disabled_recovery_has_no_armed_features():
    assert DISABLED_RECOVERY.armed_features == ()


def test_full_recovery_arms_everything():
    assert RecoveryPolicy.full().armed_features == (
        "retries",
        "hedging",
        "health",
        "shedding",
        "deadline",
    )


def test_partial_recovery_arms_selectively():
    policy = RecoveryPolicy(retry=RetryPolicy(enabled=True))
    assert policy.armed_features == ("retries",)
    deadline_only = RecoveryPolicy(deadline_us=1_000.0)
    assert deadline_only.armed_features == ("deadline",)


def test_recovery_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(deadline_us=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(retry_budget_min=-1.0)
