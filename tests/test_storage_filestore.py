"""Unit tests for the file store and sparse files."""

import pytest

from repro.sim import Environment, SimulationError
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.storage.filestore import PAGE_SIZE


@pytest.fixture
def setup():
    env = Environment()
    device = BlockDevice(
        env,
        DeviceSpec(
            name="d",
            random_latency_us=100.0,
            sequential_latency_us=10.0,
            bandwidth_bytes_per_us=1000.0,
            iops=1e6,
            queue_depth=4,
        ),
    )
    return env, device, FileStore(env, device)


def run(env, gen):
    return env.run(until=env.process(gen))


def test_create_and_get(setup):
    env, device, store = setup
    f = store.create("mem", 100)
    assert store.get("mem") is f
    assert f.size_bytes == 100 * PAGE_SIZE
    assert store.exists("mem")
    assert store.names() == ["mem"]


def test_duplicate_create_rejected(setup):
    _, _, store = setup
    store.create("a", 1)
    with pytest.raises(SimulationError):
        store.create("a", 1)


def test_get_missing_rejected(setup):
    _, _, store = setup
    with pytest.raises(SimulationError):
        store.get("nope")


def test_delete(setup):
    _, _, store = setup
    store.create("a", 1)
    store.delete("a")
    assert not store.exists("a")
    with pytest.raises(SimulationError):
        store.delete("a")


def test_files_are_contiguous_and_disjoint(setup):
    _, _, store = setup
    f1 = store.create("a", 10)
    f2 = store.create("b", 5)
    assert f1.base_offset == 0
    assert f2.base_offset == 10 * PAGE_SIZE
    assert f1.device_offset(9) + PAGE_SIZE <= f2.device_offset(0)


def test_page_contents_roundtrip(setup):
    _, _, store = setup
    f = store.create("mem", 10)
    f.write_page(3, 777)
    assert f.page_value(3) == 777
    assert f.page_value(4) == 0
    f.write_page(3, 0)
    assert f.page_value(3) == 0
    assert f.nonzero_pages() == []


def test_page_bounds_checked(setup):
    _, _, store = setup
    f = store.create("mem", 10)
    with pytest.raises(SimulationError):
        f.page_value(10)
    with pytest.raises(SimulationError):
        f.write_page(-1, 5)


def test_read_returns_contents_and_costs_io(setup):
    env, device, store = setup
    f = store.create("mem", 10, pages={0: 11, 1: 22})

    def proc():
        values = yield from f.read(0, 2)
        return values

    values = run(env, proc())
    assert values == [11, 22]
    assert device.stats.requests == 1
    assert device.stats.bytes_read == 2 * PAGE_SIZE


def test_read_past_eof_rejected(setup):
    env, _, store = setup
    f = store.create("mem", 4)

    def proc():
        yield from f.read(3, 2)

    with pytest.raises(SimulationError):
        run(env, proc())


def test_sparse_hole_read_costs_no_io(setup):
    env, device, store = setup
    f = store.create("mem", 10, sparse=True)

    def proc():
        values = yield from f.read(0, 10)
        return values

    values = run(env, proc())
    assert values == [0] * 10
    assert device.stats.requests == 0
    assert env.now == 0.0


def test_sparse_read_splits_into_data_runs(setup):
    env, device, store = setup
    # pages 1,2 and 5 hold data; 0, 3-4, 6-9 are holes.
    f = store.create("mem", 10, pages={1: 5, 2: 6, 5: 7}, sparse=True)

    def proc():
        values = yield from f.read(0, 10)
        return values

    values = run(env, proc())
    assert values == [0, 5, 6, 0, 0, 7, 0, 0, 0, 0]
    assert device.stats.requests == 2  # run [1,2] and run [5]
    assert device.stats.bytes_read == 3 * PAGE_SIZE


def test_non_sparse_file_reads_holes_from_disk(setup):
    env, device, store = setup
    f = store.create("mem", 10, pages={1: 5}, sparse=False)

    def proc():
        yield from f.read(0, 10)

    run(env, proc())
    assert device.stats.bytes_read == 10 * PAGE_SIZE


def test_is_hole(setup):
    _, _, store = setup
    sparse = store.create("s", 4, pages={1: 9}, sparse=True)
    dense = store.create("d", 4, pages={1: 9}, sparse=False)
    assert sparse.is_hole(0)
    assert not sparse.is_hole(1)
    assert not dense.is_hole(0)


def test_sequential_file_read_is_sequential_on_device(setup):
    env, device, store = setup
    f = store.create("mem", 64, pages={i: i + 1 for i in range(64)})

    def proc():
        for i in range(0, 64, 8):
            yield from f.read(i, 8)

    run(env, proc())
    assert device.stats.requests == 8
    assert device.stats.sequential_requests == 7
