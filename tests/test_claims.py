"""Tests for the machine-checkable paper claims (appendix A.4)."""

from repro.experiments import (
    fig6_execution,
    fig8_sensitivity,
    fig10_bursty,
    fig11_remote,
)
from repro.experiments.claims import (
    check_c1,
    check_c2,
    check_c3,
    check_c4,
)


def test_c1_on_reduced_sweep():
    result = check_c1(fig6_execution.run(functions=["json", "image"]))
    assert result.claim_id == "C1"
    assert result.passed, result.details
    assert result.details["speedup_vs_firecracker"] > 1.4


def test_c2_on_reduced_sweep():
    result = check_c2(
        fig8_sensitivity.run(functions=["json"], ratios=(0.5, 1.0, 4.0))
    )
    assert result.passed, result.details


def test_c3_on_reduced_sweep():
    result = check_c3(
        fig10_bursty.run(functions=("hello-world",), parallelisms=(1, 4))
    )
    assert result.passed, result.details


def test_c4_on_reduced_sweep():
    result = check_c4(fig11_remote.run(functions=["hello-world", "json"]))
    assert result.passed, result.details


def test_claim_result_str_shows_status():
    result = check_c4(fig11_remote.run(functions=["hello-world"]))
    text = str(result)
    assert "C4" in text
    assert "PASS" in text or "FAIL" in text
