"""SLO monitor: window bookkeeping, burn-rate math, multi-window
alert hysteresis, wire-config round-trips, and the service plane's
``set-slo`` / ``slo-status`` journal coverage."""

import json

import pytest

from repro.metrics.slo import (
    BurnRateRule,
    DEFAULT_OBJECTIVES,
    DEFAULT_RULES,
    SloMonitor,
    SloObjective,
    render_slo_status,
)


def _monitor(target=0.9, long_us=1000.0, short_us=100.0, factor=2.0):
    return SloMonitor(
        objectives=[SloObjective("avail", "availability", target=target)],
        rules=[BurnRateRule("r", long_us=long_us, short_us=short_us, factor=factor)],
    )


# -- objectives and rules ----------------------------------------------


def test_objective_validation():
    with pytest.raises(ValueError):
        SloObjective("x", "throughput", target=0.9)
    with pytest.raises(ValueError):
        SloObjective("x", "availability", target=1.0)
    with pytest.raises(ValueError):
        SloObjective("x", "latency", target=0.9)  # missing threshold


def test_latency_objective_good():
    obj = SloObjective("lat", "latency", target=0.9, threshold_us=1000.0)
    assert obj.good(900.0, ok=True)
    assert not obj.good(1100.0, ok=True)
    assert not obj.good(900.0, ok=False)


def test_rule_validation():
    with pytest.raises(ValueError):
        BurnRateRule("r", long_us=10.0, short_us=20.0, factor=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("r", long_us=20.0, short_us=10.0, factor=0.0)


# -- burn math and hysteresis ------------------------------------------


def test_burn_rate_is_bad_fraction_over_budget():
    monitor = _monitor(target=0.9)
    # 1 bad in 10 at 10% budget => burn exactly 1.0; never alerts at
    # factor 2.
    for i in range(9):
        assert monitor.observe(float(i), 1.0, ok=True) == []
    assert monitor.observe(9.0, 1.0, ok=False) == []
    status = monitor.status(9.0)
    window = status["objectives"][0]["windows"][0]
    assert window["burn_long"] == pytest.approx(1.0)


def test_alert_fires_only_when_both_windows_burn():
    monitor = _monitor(target=0.9, long_us=1000.0, short_us=100.0, factor=2.0)
    # Old failures burn the long window; a quiet short window must
    # hold the alert back.
    monitor.observe(0.0, 1.0, ok=False)
    assert monitor.observe(50.0, 1.0, ok=True) == []  # short diluted to 5.0
    # burn_short = 0.5/0.1 = 5 >= 2 actually fires... use more good.
    status = monitor.status(50.0)
    window = status["objectives"][0]["windows"][0]
    assert window["burn_long"] >= 2.0


def test_alert_is_rising_edge_with_hysteresis():
    monitor = _monitor(target=0.5, long_us=10.0, short_us=10.0, factor=1.5)
    fired = monitor.observe(0.0, 1.0, ok=False)
    assert [a["rule"] for a in fired] == ["r"]
    # Still burning: no duplicate alert while the condition holds.
    assert monitor.observe(1.0, 1.0, ok=False) == []
    assert len(monitor.alerts) == 1
    # An all-good window clears the condition (the hysteresis reset).
    assert monitor.observe(20.0, 1.0, ok=True) == []
    assert monitor.status(20.0)["objectives"][0]["windows"][0]["active"] is False
    # ... so the next burst is a fresh rising edge.
    refired = monitor.observe(40.0, 1.0, ok=False)
    assert [a["rule"] for a in refired] == ["r"]
    assert len(monitor.alerts) == 2


def test_windows_drop_samples_older_than_span():
    monitor = _monitor(target=0.9, long_us=100.0, short_us=100.0)
    monitor.observe(0.0, 1.0, ok=False)
    monitor.observe(200.0, 1.0, ok=True)
    status = monitor.status(200.0)
    window = status["objectives"][0]["windows"][0]
    assert window["samples_long"] == 1  # the failure at t=0 expired
    assert window["burn_long"] == 0.0


# -- wire config --------------------------------------------------------


def test_from_dict_defaults_and_round_trip():
    monitor = SloMonitor.from_dict({})
    assert monitor.objectives == DEFAULT_OBJECTIVES
    assert monitor.rules == DEFAULT_RULES
    rebuilt = SloMonitor.from_dict(monitor.config_dict())
    assert rebuilt.config_dict() == monitor.config_dict()


def test_from_dict_milliseconds_to_microseconds():
    monitor = SloMonitor.from_dict(
        {
            "objectives": [
                {"name": "lat", "kind": "latency", "target": 0.95, "threshold_ms": 250}
            ],
            "rules": [
                {"name": "only", "long_window_ms": 60_000, "short_window_ms": 5_000, "factor": 3.0}
            ],
        }
    )
    assert monitor.objectives[0].threshold_us == 250_000.0
    assert monitor.rules[0].long_us == 60_000_000.0


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError):
        SloMonitor.from_dict({"objective": []})


def test_status_sha_is_deterministic():
    one = _monitor()
    two = _monitor()
    for t in range(20):
        one.observe(float(t), 1.0, ok=t % 7 != 0)
        two.observe(float(t), 1.0, ok=t % 7 != 0)
    assert one.status_sha(20.0) == two.status_sha(20.0)


def test_render_slo_status_mentions_alerts():
    monitor = _monitor(target=0.5, factor=1.0)
    monitor.observe(0.0, 1.0, ok=False)
    text = render_slo_status(monitor.status(0.0))
    assert "FIRING" in text
    assert "ALERT @" in text


# -- service plane ------------------------------------------------------


def _service_spec():
    return {
        "functions": 2,
        "hosts": 2,
        "seed": 3,
        "source": {"kind": "poisson", "seed": 3},
    }


def test_set_slo_and_slo_status_commands_round_trip():
    from repro.service import (
        SetSloCommand,
        SloStatusCommand,
        command_from_dict,
        parse_command,
    )

    command = parse_command('set-slo {"rules": []}')
    assert isinstance(command, SetSloCommand)
    assert command.config == {"rules": []}
    assert command_from_dict(command.to_dict()) == command
    status = parse_command("slo-status")
    assert isinstance(status, SloStatusCommand)
    assert command_from_dict(status.to_dict()) == status


def test_service_slo_status_digest_and_replay_parity(tmp_path):
    from repro.service import (
        AdvanceCommand,
        DrainCommand,
        JournalWriter,
        SetSloCommand,
        SloStatusCommand,
        build_service,
        replay_journal,
    )

    journal_path = tmp_path / "slo.journal"
    journal = JournalWriter(journal_path)
    service = build_service(dict(_service_spec(), slo={}), journal=journal)
    service.execute(AdvanceCommand(ms=5_000.0))
    first = service.execute(SloStatusCommand())
    assert first["slo"]["schema"] == "repro.slo-status/1"
    assert "slo_sha256" in first
    assert first["digest"]["slo_sha256"] == first["slo_sha256"]
    service.execute(
        SetSloCommand(
            config={
                "objectives": [
                    {"name": "lat", "kind": "latency", "target": 0.9, "threshold_ms": 50}
                ]
            }
        )
    )
    second = service.execute(SloStatusCommand())
    assert [o["name"] for o in second["slo"]["objectives"]] == ["lat"]
    assert second["slo_sha256"] != first["slo_sha256"]
    service.execute(DrainCommand())
    journal.close()

    outcome = replay_journal(journal_path)
    assert outcome.ok, outcome.mismatches


def test_service_without_monitor_reports_disabled():
    from repro.service import SloStatusCommand, build_service

    service = build_service(_service_spec())
    result = service.execute(SloStatusCommand())
    assert result["slo"] == {"enabled": False}
    assert "slo_sha256" in result


def test_slo_observes_served_invocations_in_cluster_run():
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    fleet = [FleetFunction("f0", "json", 1e6)]
    arrivals = [Arrival(time_us=i * 200_000.0, function="f0") for i in range(20)]
    trace = ArrivalTrace(arrivals=arrivals, duration_us=4_000_000.0)
    monitor = SloMonitor.default()
    report = ClusterSimulator(fleet, ClusterConfig(num_hosts=2, seed=3)).run(
        trace, slo=monitor
    )
    assert monitor.observed == report.count() == 20


def test_json_wire_form_matches_cli_flag():
    # The CLI passes --slo through json.loads; the canonical config
    # must survive that trip.
    monitor = SloMonitor.default()
    blob = json.dumps(monitor.config_dict())
    assert SloMonitor.from_dict(json.loads(blob)).config_dict() == monitor.config_dict()
