"""Unit tests for simulation resources (Resource, Store)."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("start", tag, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user("a", 10))
    env.process(user("b", 5))
    env.process(user("c", 1))
    env.run()
    assert [entry[1] for entry in order] == ["a", "b", "c"]
    assert [entry[2] for entry in order] == [0.0, 10.0, 15.0]


def test_resource_release_wakes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered
    assert res.in_use == 1


def test_release_waiting_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel while still queued
    assert res.queue_length == 0
    res.release(r1)
    assert res.in_use == 0


def test_release_foreign_request_rejected():
    env = Environment()
    res_a = Resource(env)
    res_b = Resource(env)
    req = res_a.request()
    with pytest.raises(SimulationError):
        res_b.release(req)


def test_release_without_grant_rejected():
    env = Environment()
    res = Resource(env)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_acquire_helper():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(tag):
        req = yield from res.acquire()
        log.append((tag, env.now))
        yield env.timeout(3)
        res.release(req)

    env.process(user("first"))
    env.process(user("second"))
    env.run()
    assert log == [("first", 0.0), ("second", 3.0)]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = store.get()
    assert got.triggered
    assert got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        item = yield store.get()
        received.append((env.now, item))

    def producer():
        yield env.timeout(8)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [(8.0, "late")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    for item in (1, 2, 3):
        store.put(item)
    assert store.items() == [1, 2, 3]
    assert [store.get().value for _ in range(3)] == [1, 2, 3]


def test_store_multiple_waiting_getters_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(tag):
        item = yield store.get()
        received.append((tag, item))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1)
        store.put("first")
        store.put("second")

    env.process(producer())
    env.run()
    assert received == [("a", "first"), ("b", "second")]
