"""Unit tests for statistics, histograms and table rendering."""

import pytest

from repro.metrics import (
    Histogram,
    fault_time_histogram,
    geometric_mean,
    mean,
    render_table,
    stddev,
)
from repro.metrics.stats import FIGURE2_EDGES


# -- scalar stats ---------------------------------------------------


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0


def test_stddev():
    assert stddev([5]) == 0.0
    assert stddev([]) == 0.0
    assert stddev([2, 4]) == pytest.approx(1.0)
    assert stddev([3, 3, 3]) == 0.0


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1, 0])
    with pytest.raises(ValueError):
        geometric_mean([-1])


# -- histogram ---------------------------------------------------------


def test_histogram_edge_validation():
    with pytest.raises(ValueError):
        Histogram(edges=[1.0])
    with pytest.raises(ValueError):
        Histogram(edges=[2.0, 1.0])


def test_histogram_add_and_buckets():
    histogram = Histogram(edges=[0.0, 1.0, 10.0])
    for value in (0.5, 0.9, 5.0, 100.0):
        histogram.add(value)
    assert histogram.counts == [2, 1, 1]
    assert histogram.total == 4
    labels = [label for label, _ in histogram.buckets()]
    assert labels == ["[0,1)", "[1,10)", ">=10"]
    assert histogram.as_dict()["[0,1)"] == 2


def test_histogram_below_first_edge_goes_to_first_bucket():
    histogram = Histogram(edges=[1.0, 2.0])
    histogram.add(0.1)
    assert histogram.counts == [1, 0]


def test_figure2_edges_are_powers_of_two():
    assert FIGURE2_EDGES[0] == 0.5
    assert FIGURE2_EDGES[-1] == 512.0
    for a, b in zip(FIGURE2_EDGES, FIGURE2_EDGES[1:]):
        assert b == 2 * a


def test_fault_time_histogram():
    histogram = fault_time_histogram([2.5, 3.7, 100.0, 600.0])
    assert histogram.total == 4
    assert histogram.as_dict()[">=512"] == 1


def test_histogram_percentile_nearest_rank():
    histogram = Histogram(edges=[0.0, 1.0, 10.0, 100.0])
    for value in (0.5, 0.6, 5.0, 50.0):
        histogram.add(value)
    # Ranks resolve to the lower edge of the holding bucket.
    assert histogram.percentile(0) == 0.0
    assert histogram.percentile(50) == 0.0
    assert histogram.percentile(75) == 1.0
    assert histogram.percentile(100) == 10.0


def test_histogram_percentile_empty():
    assert Histogram(edges=[0.0, 1.0]).percentile(99) == 0.0


def test_histogram_percentile_single_bucket():
    histogram = Histogram(edges=[1.0, 2.0])
    histogram.add(1.5)
    for p in (0, 50, 99, 100):
        assert histogram.percentile(p) == 1.0


def test_histogram_percentile_overflow_bucket():
    histogram = Histogram(edges=[0.0, 1.0])
    histogram.add(999.0)
    assert histogram.percentile(100) == 1.0


def test_histogram_merge_sums_counts():
    a = Histogram(edges=[0.0, 1.0, 10.0])
    b = Histogram(edges=[0.0, 1.0, 10.0])
    a.add_all([0.5, 5.0])
    b.add_all([0.5, 100.0])
    merged = a.merge(b)
    assert merged.counts == [2, 1, 1]
    # Inputs untouched: merge returns a new histogram.
    assert a.counts == [1, 1, 0]
    assert b.counts == [1, 0, 1]


def test_histogram_merge_empty_is_identity():
    a = Histogram(edges=[0.0, 1.0])
    a.add(0.5)
    merged = a.merge(Histogram(edges=[0.0, 1.0]))
    assert merged.counts == a.counts


def test_histogram_merge_rejects_mismatched_edges():
    with pytest.raises(ValueError):
        Histogram(edges=[0.0, 1.0]).merge(Histogram(edges=[0.0, 2.0]))


# -- table rendering ------------------------------------------------------


def test_render_table_alignment():
    out = render_table(
        ["name", "value"],
        [["alpha", 1.0], ["b", 123456.0]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "alpha" in lines[3]
    assert "123456" in lines[4]


def test_render_table_float_precision():
    out = render_table(["v"], [[0.1234], [12.3], [1234.5]])
    assert "0.123" in out
    assert "12.3" in out
    assert "1235" in out or "1234" in out


def test_render_table_empty_rows():
    out = render_table(["a", "b"], [])
    assert "a" in out and "b" in out


# -- bar charts ------------------------------------------------------------


def test_render_bars_scaling():
    from repro.metrics import render_bars

    out = render_bars(["a", "bb"], [50.0, 100.0], width=10, unit="ms")
    lines = out.splitlines()
    assert lines[0].startswith("a ")
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "ms" in lines[0]


def test_render_bars_zero_and_title():
    from repro.metrics import render_bars

    out = render_bars(["x"], [0.0], title="T")
    assert out.splitlines()[0] == "T"
    assert "#" not in out


def test_render_bars_validation():
    from repro.metrics import render_bars

    with pytest.raises(ValueError):
        render_bars(["a"], [1.0, 2.0])
    assert render_bars([], [], title="empty") == "empty"
