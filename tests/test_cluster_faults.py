"""Integration tests: fault injection against the cluster scheduler.

These pin the ISSUE's acceptance criteria: arming an *empty* fault
plan leaves the simulation bit-identical; the same seed and plan
replay the same report; and the self-healing control plane keeps a
host-crash storm above 99% availability while the same storm with
recovery disabled measurably fails arrivals.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulator, TIER_SHARED_EBS
from repro.cluster.placement import HealthFiltered, LeastLoaded, RoundRobin
from repro.core.policies import Policy
from repro.faults import (
    DISABLED_RECOVERY,
    SCOPE_ALL,
    DeviceFault,
    FaultPlan,
    HealthPolicy,
    HedgePolicy,
    HostCrash,
    RecoveryPolicy,
    RetryPolicy,
    SheddingPolicy,
    SnapshotCorruption,
)
from repro.fleet.scheduler import InvocationOutcome, StartKind
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

SECOND = 1_000_000.0


def fleet_of(*names):
    return [
        FleetFunction(
            name=name, profile_name="json", mean_interarrival_us=SECOND
        )
        for name in names
    ]


def trace_of(*arrivals):
    items = sorted(
        (Arrival(time_us=t, function=f) for t, f in arrivals),
        key=lambda a: (a.time_us, a.function),
    )
    return ArrivalTrace(
        arrivals=items, duration_us=max(a.time_us for a in items) + 1
    )


def spaced_trace(count, spacing_us=400_000.0, functions=("f0", "f1")):
    return trace_of(
        *(
            (i * spacing_us, functions[i % len(functions)])
            for i in range(count)
        )
    )


def served_tuples(report):
    return [
        (s.time_us, s.function, s.kind, s.latency_us, s.host,
         s.outcome, s.attempts)
        for s in report.served
    ]


# -- zero-perturbation and determinism ---------------------------------


def test_empty_plan_is_bit_identical_to_legacy_path():
    """Arming the fault plane with nothing to inject must reproduce
    the legacy serving path's exact latencies, hosts, and kinds."""
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(6)
    config = ClusterConfig(num_hosts=2, placement="least-loaded", seed=5)
    legacy = ClusterSimulator(fleet, config).run(trace)
    armed = ClusterSimulator(fleet, config).run(
        trace, fault_plan=FaultPlan.empty()
    )
    assert served_tuples(armed) == served_tuples(legacy)
    assert all(s.outcome is InvocationOutcome.OK for s in armed.served)
    assert all(s.attempts == 1 for s in armed.served)


def test_same_seed_and_plan_replay_identically():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(8)
    plan = FaultPlan(
        host_crashes=[
            HostCrash(host="host0", at_us=0.9 * SECOND,
                      reboot_after_us=1.0 * SECOND)
        ]
    )

    def go():
        config = ClusterConfig(
            num_hosts=2,
            placement="round-robin",
            recovery=RecoveryPolicy.full(),
            seed=3,
        )
        return ClusterSimulator(fleet, config).run(trace, fault_plan=plan)

    assert served_tuples(go()) == served_tuples(go())


def test_different_seeds_may_differ_but_stay_available():
    """The seed only feeds jitter/error draws — availability holds."""
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(8)
    plan = FaultPlan(
        host_crashes=[
            HostCrash(host="host0", at_us=0.9 * SECOND,
                      reboot_after_us=1.0 * SECOND)
        ]
    )
    for seed in (1, 2, 3):
        config = ClusterConfig(
            num_hosts=2,
            placement="round-robin",
            recovery=RecoveryPolicy.full(),
            seed=seed,
        )
        report = ClusterSimulator(fleet, config).run(
            trace, fault_plan=plan
        )
        assert report.availability() == 1.0


# -- host crashes ------------------------------------------------------

CRASH_PLAN = FaultPlan(
    host_crashes=[
        HostCrash(host="host0", at_us=0.9 * SECOND,
                  reboot_after_us=1.0 * SECOND)
    ]
)


def crash_run(recovery):
    fleet = fleet_of("f0", "f1")
    config = ClusterConfig(
        num_hosts=2, placement="round-robin", recovery=recovery, seed=3
    )
    return ClusterSimulator(fleet, config).run(
        spaced_trace(8), fault_plan=CRASH_PLAN
    )


def test_recovery_rides_out_a_host_crash():
    report = crash_run(RecoveryPolicy.full())
    assert report.availability() == 1.0
    counts = report.outcome_counts()
    assert counts["retried"] >= 1
    assert counts["failed"] == 0
    # The interrupted attempts retried elsewhere: amplification > 1.
    assert report.retry_amplification() > 1.0


def test_disabled_recovery_fails_crashed_invocations():
    report = crash_run(DISABLED_RECOVERY)
    assert report.availability() < 1.0
    counts = report.outcome_counts()
    assert counts["failed"] >= 1
    failed = [
        s for s in report.served
        if s.outcome is InvocationOutcome.FAILED
    ]
    assert all(s.kind is None for s in failed)


def test_crash_drains_keep_alive_pool():
    """A crashed host loses its warm VMs: the next invocation of the
    same function cannot be a warm start, even after reboot."""
    fleet = fleet_of("f0")
    trace = trace_of((0.0, "f0"), (4.0 * SECOND, "f0"))
    config = ClusterConfig(
        num_hosts=1,
        keep_alive_ttl_us=30 * SECOND,
        recovery=RecoveryPolicy(retry=RetryPolicy(enabled=True)),
        seed=3,
    )
    # Control: without the crash the second arrival reuses the warm VM.
    control = ClusterSimulator(fleet, config).run(trace)
    assert control.served[1].kind is StartKind.WARM

    plan = FaultPlan(
        host_crashes=[
            HostCrash(host="host0", at_us=3.0 * SECOND,
                      reboot_after_us=0.5 * SECOND)
        ]
    )
    report = ClusterSimulator(fleet, config).run(trace, fault_plan=plan)
    assert report.host_stats["host0"].crash_vm_losses == 1
    second = report.served[1]
    assert second.outcome in (InvocationOutcome.OK, InvocationOutcome.RETRIED)
    assert second.kind is not StartKind.WARM


# -- snapshot corruption -----------------------------------------------


def test_corrupted_snapshot_detected_and_retried():
    fleet = fleet_of("f0", "f1")
    config = ClusterConfig(
        num_hosts=2,
        placement="round-robin",
        assume_snapshots_exist=True,
        keep_alive_ttl_us=0.0,
        recovery=RecoveryPolicy(retry=RetryPolicy(enabled=True)),
        seed=3,
    )
    plan = FaultPlan(
        corruptions=[
            SnapshotCorruption(host="host0", function="f0", at_us=0.0)
        ]
    )
    simulator = ClusterSimulator(fleet, config)
    report = simulator.run(spaced_trace(4), fault_plan=plan)
    assert report.availability() == 1.0
    assert report.outcome_counts()["retried"] >= 1
    assert report.host_stats["host0"].snapshot_corruptions == 1
    assert simulator.injector.summary()["corruptions_detected"] == 1


# -- device faults -----------------------------------------------------


def test_device_error_window_retries_on_another_host():
    fleet = fleet_of("f0", "f1")
    config = ClusterConfig(
        num_hosts=2,
        placement="round-robin",
        assume_snapshots_exist=True,
        keep_alive_ttl_us=0.0,
        recovery=RecoveryPolicy(retry=RetryPolicy(enabled=True)),
        seed=3,
    )
    # host0's device fails every read for the whole run.
    plan = FaultPlan(
        device_faults=[
            DeviceFault(scope="host0", start_us=0.0, error_rate=1.0)
        ]
    )
    report = ClusterSimulator(fleet, config).run(
        spaced_trace(4), fault_plan=plan
    )
    assert report.availability() == 1.0
    assert report.outcome_counts()["retried"] >= 1
    # Every arrival ended up served by the healthy host.
    assert {s.host for s in report.served} == {"host1"}


def test_shared_tier_scope_hits_the_shared_device():
    fleet = fleet_of("f0", "f1")
    config = ClusterConfig(
        num_hosts=2,
        placement="round-robin",
        snapshot_tier=TIER_SHARED_EBS,
        assume_snapshots_exist=True,
        keep_alive_ttl_us=0.0,
        seed=3,
    )
    plan = FaultPlan(
        device_faults=[
            DeviceFault(
                scope="shared", start_us=0.0, latency_factor=10.0
            )
        ]
    )
    baseline = ClusterSimulator(fleet, config).run(spaced_trace(2))
    degraded = ClusterSimulator(fleet, config).run(
        spaced_trace(2), fault_plan=plan
    )
    assert degraded.availability() == 1.0
    assert (
        degraded.mean_latency_us() > baseline.mean_latency_us()
    )


def test_devices_for_scope_unknown_host_raises():
    fleet = fleet_of("f0")
    simulator = ClusterSimulator(
        fleet, ClusterConfig(num_hosts=1, seed=3)
    )
    simulator.run(trace_of((0.0, "f0")))
    with pytest.raises(ValueError):
        simulator.devices_for_scope("no-such-host")
    assert simulator.devices_for_scope("shared") == []
    assert len(simulator.devices_for_scope(SCOPE_ALL)) == 1


# -- load shedding and degraded mode -----------------------------------


def burst_trace(count, function="f0"):
    return trace_of(*((float(i), function) for i in range(count)))


def test_overload_sheds_beyond_max_queue_depth():
    fleet = fleet_of("f0")
    config = ClusterConfig(
        num_hosts=1,
        recovery=RecoveryPolicy(
            shedding=SheddingPolicy(max_queue_depth=2)
        ),
        seed=3,
    )
    report = ClusterSimulator(fleet, config).run(burst_trace(8))
    counts = report.outcome_counts()
    assert counts["shed"] >= 1
    assert counts["ok"] >= 1
    shed = [
        s for s in report.served if s.outcome is InvocationOutcome.SHED
    ]
    assert all(s.attempts == 0 and s.kind is None for s in shed)
    assert report.host_stats["host0"].shed == counts["shed"]
    # Shed arrivals carry no latency and never pollute the tails.
    assert report.latency_percentile(99) > 0.0
    assert 0.0 < report.availability() < 1.0


def test_degraded_mode_switches_restore_policy_under_load():
    fleet = fleet_of("f0")
    config = ClusterConfig(
        num_hosts=1,
        assume_snapshots_exist=True,
        keep_alive_ttl_us=0.0,
        recovery=RecoveryPolicy(
            shedding=SheddingPolicy(degraded_queue_depth=1)
        ),
        seed=3,
    )
    report = ClusterSimulator(fleet, config).run(burst_trace(4))
    assert report.availability() == 1.0
    assert report.host_stats["host0"].degraded_starts >= 1


def test_fully_shed_report_has_no_divide_by_zero():
    """A report whose every arrival was shed must not crash any
    summary statistic (the fully-shed overload edge case)."""
    from repro.fleet.scheduler import FleetReport, ServedInvocation

    report = FleetReport(
        served=[
            ServedInvocation(
                time_us=0.0,
                function="f0",
                kind=None,
                latency_us=0.0,
                outcome=InvocationOutcome.SHED,
                attempts=0,
            )
        ]
    )
    assert report.availability() == 0.0
    assert report.latency_percentile(99) == 0.0
    assert report.latency_percentile(99.9) == 0.0
    assert report.mean_latency_us() == 0.0
    assert report.retry_amplification() == 0.0


def test_empty_report_statistics_are_defined():
    from repro.fleet.scheduler import FleetReport

    report = FleetReport()
    assert report.availability() == 1.0
    assert report.latency_percentile(50) == 0.0
    assert report.mean_latency_us() == 0.0
    assert report.retry_amplification() == 0.0


# -- hedging -----------------------------------------------------------


def test_hedge_wins_against_a_browned_out_host():
    """With a tailored hedge policy, an attempt stuck on a degraded
    device is hedged on the healthy host, which finishes first."""
    fleet = fleet_of("f0", "f1")
    config = ClusterConfig(
        num_hosts=2,
        placement="round-robin",
        assume_snapshots_exist=True,
        keep_alive_ttl_us=0.0,
        recovery=RecoveryPolicy(
            hedge=HedgePolicy(
                enabled=True, percentile=50.0, min_samples=2,
                floor_us=0.0, multiplier=2.0,
            ),
        ),
        seed=3,
    )
    # Four clean arrivals establish the latency baseline, then host0's
    # device collapses for the rest of the run and the final arrival
    # (round-robin: index 4 -> host0) gets stuck on it.
    trace = spaced_trace(5, spacing_us=2.0 * SECOND)
    plan = FaultPlan(
        device_faults=[
            DeviceFault(
                scope="host0",
                start_us=7.9 * SECOND,
                latency_factor=50.0,
                bandwidth_factor=0.02,
            )
        ]
    )
    report = ClusterSimulator(fleet, config).run(trace, fault_plan=plan)
    assert report.availability() == 1.0
    counts = report.outcome_counts()
    assert counts["hedge-won"] == 1
    hedged = [
        s for s in report.served
        if s.outcome is InvocationOutcome.HEDGE_WON
    ]
    assert hedged[0].host == "host1"
    assert hedged[0].attempts == 2
    assert report.host_stats["host1"].hedges == 1


# -- health-filtered placement -----------------------------------------


class _View:
    def __init__(self, index, load, healthy=True):
        self.index = index
        self._load = load
        self.healthy = healthy

    @property
    def load(self):
        return self._load

    def has_idle_warm(self, function):
        return False

    def has_snapshot_for(self, function):
        return False


def test_health_filtered_routes_around_unhealthy_hosts():
    policy = HealthFiltered(LeastLoaded())
    views = [_View(0, 0, healthy=False), _View(1, 5), _View(2, 3)]
    # host0 has the least load but is drained; host2 is next-best.
    assert policy.choose(views, "f") == 2
    assert policy.filtered_choices == 1


def test_health_filtered_uses_all_hosts_when_all_unhealthy():
    policy = HealthFiltered(RoundRobin())
    views = [_View(0, 0, healthy=False), _View(1, 0, healthy=False)]
    assert policy.choose(views, "f") in (0, 1)


def test_health_filtered_inert_on_healthy_cluster():
    policy = HealthFiltered(LeastLoaded())
    views = [_View(0, 2), _View(1, 1)]
    assert policy.choose(views, "f") == 1
    assert policy.filtered_choices == 0


# -- deadlines ---------------------------------------------------------


def test_deadline_fails_invocations_that_cannot_finish():
    fleet = fleet_of("f0")
    config = ClusterConfig(
        num_hosts=1,
        recovery=RecoveryPolicy(deadline_us=50_000.0),
        seed=3,
    )
    # A cold start takes seconds; a 50 ms deadline must fire.
    report = ClusterSimulator(fleet, config).run(trace_of((0.0, "f0")))
    served = report.served[0]
    assert served.outcome is InvocationOutcome.FAILED
    assert served.kind is None
    assert served.latency_us == pytest.approx(50_000.0)
    assert report.availability() == 0.0
