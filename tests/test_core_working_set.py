"""Unit tests for working-set representations."""

import pytest

from repro.core.working_set import ReapWorkingSet, WorkingSetGroups


def test_groups_from_batches_basic():
    ws = WorkingSetGroups.from_batches([[5, 1, 9], [2, 7]], group_pages=1024)
    assert len(ws) == 5
    assert ws.group(5) == 1
    assert ws.group(1) == 1
    assert ws.group(2) == 2
    assert ws.num_groups == 2
    assert ws.pages == [1, 2, 5, 7, 9]


def test_groups_split_oversized_batches():
    ws = WorkingSetGroups.from_batches([list(range(10))], group_pages=4)
    assert ws.num_groups == 3
    assert ws.group(0) == 1
    assert ws.group(3) == 1
    assert ws.group(4) == 2
    assert ws.group(9) == 3


def test_groups_dedupe_across_batches():
    ws = WorkingSetGroups.from_batches([[1, 2], [2, 3]], group_pages=1024)
    assert ws.group(2) == 1  # first appearance wins
    assert ws.group(3) == 2


def test_groups_empty():
    ws = WorkingSetGroups.from_batches([])
    assert len(ws) == 0
    assert ws.num_groups == 0
    assert ws.pages == []
    assert 5 not in ws


def test_groups_invalid_group_pages():
    with pytest.raises(ValueError):
        WorkingSetGroups.from_batches([[1]], group_pages=0)


def test_pages_of_group():
    ws = WorkingSetGroups.from_batches([[9, 3], [1]], group_pages=1024)
    assert ws.pages_of_group(1) == [3, 9]
    assert ws.pages_of_group(2) == [1]


def test_groups_contains_and_size():
    ws = WorkingSetGroups.from_batches([[1, 2, 3]])
    assert 2 in ws
    assert 4 not in ws
    assert ws.size_mb() == pytest.approx(3 * 4096 / 1e6)


def test_reap_ws_preserves_fault_order():
    ws = ReapWorkingSet.from_fault_pages([9, 3, 9, 1, 3, 5])
    assert ws.pages_in_fault_order == [9, 3, 1, 5]
    assert len(ws) == 4
    assert 3 in ws
    assert 7 not in ws


def test_reap_ws_size():
    ws = ReapWorkingSet.from_fault_pages(range(256))
    assert ws.size_mb() == pytest.approx(1.048576)
