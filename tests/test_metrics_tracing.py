"""Tests for span tracing, including integration with invocations."""

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.metrics.tracing import Span, Tracer, render_trace
from repro.sim import Environment
from repro.workloads.base import INPUT_A, WorkloadProfile

TINY = WorkloadProfile(
    name="tiny-trace",
    description="minimal profile",
    core_pages=200,
    var_base_pages=50,
    var_pool_pages=200,
    anon_base_pages=100,
    compute_base_us=5_000.0,
    spread_factor=5.0,
    total_pages=16_384,
    boot_pages=1_024,
)


def test_span_nesting_and_durations():
    env = Environment()
    tracer = Tracer(env)

    def proc():
        with tracer.span("outer"):
            yield env.timeout(10)
            with tracer.span("inner"):
                yield env.timeout(5)
            yield env.timeout(1)

    env.run(until=env.process(proc()))
    (outer,) = tracer.roots
    assert outer.name == "outer"
    assert outer.duration_us == pytest.approx(16)
    (inner,) = outer.children
    assert inner.duration_us == pytest.approx(5)
    assert inner.start_us == pytest.approx(10)


def test_open_span_duration_raises():
    span = Span(name="x", start_us=0.0)
    with pytest.raises(ValueError):
        span.duration_us


def test_end_unknown_span_raises():
    env = Environment()
    tracer = Tracer(env)
    orphan = Span(name="orphan", start_us=0.0)
    with pytest.raises(ValueError):
        tracer.end(orphan)


def test_end_closes_dangling_children():
    env = Environment()
    tracer = Tracer(env)
    outer = tracer.start("outer")
    tracer.start("inner-left-open")
    tracer.end(outer)
    assert outer.end_us is not None
    assert outer.children[0].end_us is not None


def test_open_span_serializes_with_marker():
    span = Span(name="open", start_us=3.0)
    payload = span.to_dict()
    assert payload["duration_us"] is None
    assert payload["open"] is True
    assert payload["timestamp_us"] == 3.0


def test_closed_span_serializes_without_marker():
    span = Span(name="closed", start_us=3.0, end_us=8.0)
    payload = span.to_dict()
    assert payload["duration_us"] == 5.0
    assert "open" not in payload


def test_open_child_marker_survives_json():
    import json

    root = Span(name="root", start_us=0.0, end_us=10.0)
    root.children.append(Span(name="dangling", start_us=2.0))
    parsed = json.loads(json.dumps(root.to_dict()))
    assert "open" not in parsed
    assert parsed["children"][0]["open"] is True
    assert parsed["children"][0]["duration_us"] is None


def test_record_posthoc_span():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.record("root", 0.0, 100.0)
    child = tracer.record("child", 10.0, 60.0, parent=root)
    assert tracer.roots == [root]
    assert root.find("child") is child
    assert root.find("ghost") is None


def test_render_trace_tree():
    root = Span(name="invocation", start_us=0.0, end_us=100_000.0)
    root.children.append(Span(name="setup", start_us=0.0, end_us=40_000.0))
    root.annotate("note")
    text = render_trace(root)
    assert "invocation: 100.00 ms" in text
    assert "  setup: 40.00 ms" in text
    assert "- note" in text


def test_export_json_roundtrips():
    import json

    from repro.metrics.tracing import export_json

    env = Environment()
    tracer = Tracer(env)
    root = tracer.record("root", 0.0, 50.0)
    root.annotate("hello")
    tracer.record("child", 5.0, 25.0, parent=root)
    parsed = json.loads(export_json(tracer))
    assert parsed[0]["name"] == "root"
    assert parsed[0]["duration_us"] == 50.0
    assert parsed[0]["annotations"] == ["hello"]
    assert parsed[0]["children"][0]["name"] == "child"


def test_span_tags_serialize():
    span = Span(name="x", start_us=0.0, end_us=5.0)
    span.tag("host", "host3")
    span.tag("policy", "faasnap")
    payload = span.to_dict()
    assert payload["tags"] == {"host": "host3", "policy": "faasnap"}


def test_default_tags_stamped_on_start_and_record():
    env = Environment()
    tracer = Tracer(env, default_tags={"host": "host1"})
    started = tracer.start("a")
    tracer.end(started)
    recorded = tracer.record("b", 0.0, 1.0)
    assert started.tags == {"host": "host1"}
    assert recorded.tags == {"host": "host1"}


def test_tagged_view_shares_roots_with_merged_tags():
    env = Environment()
    tracer = Tracer(env, default_tags={"run": "r1"})
    view = tracer.tagged(host="host2")
    span = view.record("restore", 0.0, 10.0)
    # The view writes into the parent tracer's root list, with the
    # parent's tags plus its own.
    assert tracer.roots == [span]
    assert span.tags == {"run": "r1", "host": "host2"}
    # ...but keeps its own open-span stack: a span the view opens
    # does not nest into the parent tracer's open span.
    outer = tracer.start("outer")
    inner = view.start("inner")
    assert inner in tracer.roots
    assert inner not in outer.children
    tracer.end(outer)
    view.end(inner)


def test_tracer_without_env_records_but_cannot_start():
    tracer = Tracer()
    span = tracer.record("posthoc", 0.0, 2.0)
    assert tracer.roots == [span]
    with pytest.raises(ValueError):
        tracer.start("live")


def test_tracer_to_json_parses():
    import json

    tracer = Tracer()
    root = tracer.record("root", 0.0, 50.0)
    tracer.record("child", 5.0, 25.0, parent=root)
    root.tag("host", "host0")
    parsed = json.loads(tracer.to_json())
    assert parsed[0]["tags"] == {"host": "host0"}
    assert parsed[0]["children"][0]["name"] == "child"


def test_invocation_records_span_tree():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    tracer = Tracer(platform.env)
    result = platform.invoke(
        handle, INPUT_A, Policy.FAASNAP, tracer=tracer
    )
    (root,) = tracer.roots
    assert "tiny-trace" in root.name
    setup = root.find("setup")
    invoke = root.find("invoke")
    loader = root.find("concurrent loader")
    assert setup is not None and invoke is not None and loader is not None
    assert setup.duration_us == pytest.approx(result.setup_us)
    assert invoke.duration_us == pytest.approx(result.invoke_us)
    assert loader.annotations  # fetched N MB note
    # The loader overlaps setup: it starts at request time.
    assert loader.start_us == pytest.approx(root.start_us)


def test_reap_invocation_traces_fetch():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    tracer = Tracer(platform.env)
    platform.invoke(handle, INPUT_A, Policy.REAP, tracer=tracer)
    (root,) = tracer.roots
    fetch = root.find("working-set fetch + UFFDIO_COPY")
    assert fetch is not None
    assert fetch.duration_us > 0
    text = render_trace(root)
    assert "working-set fetch" in text
