"""Round-trip tests for the telemetry exporters: Prometheus text,
structured JSON, shard merging, and Chrome trace_event."""

import json

import pytest

from repro.metrics.exporters import (
    JSON_SCHEMA,
    merge_shard_snapshots,
    parse_prometheus,
    registry_snapshot,
    to_chrome_trace,
    to_json_doc,
    to_prometheus,
)
from repro.metrics.telemetry import MetricsRegistry, Sampler
from repro.metrics.tracing import Span, Tracer
from repro.sim import Environment


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("host0.page_cache.hits").inc(42)
    registry.pull_counter("sim.engine.events", lambda: 1000)
    registry.gauge("host0.device.queue_depth", lambda: 3)
    hist = registry.histogram("host0.fault.time_us", [0.0, 1.0, 10.0])
    for value in (0.5, 0.7, 5.0, 100.0):
        hist.observe(value)
    registry.profiler.phase("invoke", 0.0, 50.0)
    return registry


# -- prometheus --------------------------------------------------------


def test_prometheus_round_trips_counter_values():
    registry = populated_registry()
    samples = parse_prometheus(to_prometheus(registry))
    assert samples["host0_page_cache_hits"] == 42
    assert samples["sim_engine_events"] == 1000
    assert samples["host0_device_queue_depth"] == 3


def test_prometheus_histogram_buckets_are_cumulative():
    registry = populated_registry()
    samples = parse_prometheus(to_prometheus(registry))
    # Buckets [0,1), [1,10), >=10 with counts [2, 1, 1]: the le bounds
    # are the upper edges plus +Inf, counts accumulate.
    assert samples['host0_fault_time_us_bucket{le="1.0"}'] == 2
    assert samples['host0_fault_time_us_bucket{le="10.0"}'] == 3
    assert samples['host0_fault_time_us_bucket{le="+Inf"}'] == 4
    assert samples["host0_fault_time_us_count"] == 4
    assert samples["host0_fault_time_us_sum"] == pytest.approx(106.2)


def test_prometheus_type_lines_present():
    text = to_prometheus(populated_registry())
    assert "# TYPE host0_page_cache_hits counter" in text
    assert "# TYPE host0_device_queue_depth gauge" in text
    assert "# TYPE host0_fault_time_us histogram" in text


def test_prometheus_name_sanitization():
    registry = MetricsRegistry()
    registry.counter("2nd.host-a.hits").inc(1)
    samples = parse_prometheus(to_prometheus(registry))
    assert samples["_2nd_host_a_hits"] == 1


# -- structured JSON ---------------------------------------------------


def test_json_doc_is_serializable_with_schema():
    registry = populated_registry()
    env = Environment()
    sampler = Sampler(registry, env, interval_us=10.0)
    sampler.sample()
    doc = to_json_doc(registry, sampler=sampler, total_us=50.0)
    parsed = json.loads(json.dumps(doc))
    assert parsed["schema"] == JSON_SCHEMA
    assert parsed["virtual_time_us"] == 50.0
    assert parsed["profile_attributed_us"] == 50.0
    assert parsed["counters"]["host0.page_cache.hits"] == 42
    assert parsed["histograms"]["host0.fault.time_us"]["count"] == 4
    assert parsed["profile"]["phase.invoke"]["time_us"] == 50.0
    assert parsed["samples"]["gauges"]["host0.device.queue_depth"] == [3]


def test_merge_shard_snapshots_sums_everything_but_gauges():
    def shard(hits, virtual_us):
        registry = MetricsRegistry()
        registry.counter("hits").inc(hits)
        registry.gauge("depth", lambda: 9)
        registry.histogram("h", [0.0, 1.0]).observe(0.5)
        registry.profiler.phase("invoke", 0.0, virtual_us)
        snapshot = registry_snapshot(registry)
        snapshot["virtual_time_us"] = virtual_us
        return snapshot

    merged = merge_shard_snapshots([shard(2, 10.0), shard(5, 20.0)])
    assert merged["shards"] == 2
    assert merged["counters"]["hits"] == 7
    assert merged["virtual_time_us"] == 30.0
    assert merged["histograms"]["h"]["counts"] == [2, 0]
    assert merged["profile"]["phase.invoke"]["time_us"] == 30.0
    assert "gauges" not in merged  # instantaneous, meaningless summed


def test_merge_rejects_mismatched_histogram_edges():
    a = {"histograms": {"h": {"edges": [0.0, 1.0], "counts": [1, 0], "count": 1, "sum": 0.5}}}
    b = {"histograms": {"h": {"edges": [0.0, 2.0], "counts": [1, 0], "count": 1, "sum": 0.5}}}
    with pytest.raises(ValueError):
        merge_shard_snapshots([a, b])


# -- chrome trace ------------------------------------------------------

REQUIRED_KEYS = {"ph", "ts", "dur", "pid", "tid", "name"}


def test_chrome_trace_has_required_keys():
    tracer = Tracer()
    root = tracer.record("invocation", 0.0, 100.0)
    tracer.record("setup", 0.0, 40.0, parent=root)
    doc = to_chrome_trace(tracer)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert len(events) == 2
    for event in events:
        assert REQUIRED_KEYS <= set(event)
        assert event["ph"] == "X"
    (invocation, setup) = events
    assert invocation["name"] == "invocation"
    assert invocation["dur"] == 100.0
    assert setup["ts"] == 0.0 and setup["dur"] == 40.0
    json.dumps(doc)  # must be serializable as-is


def test_chrome_trace_groups_pids_by_host_and_tids_by_root():
    tracer = Tracer()
    a = tracer.record("a", 0.0, 10.0)
    a.tag("host", "host1")
    b = tracer.record("b", 5.0, 15.0)
    b.tag("host", "host0")
    tracer.record("a.child", 1.0, 2.0, parent=a)
    events = {e["name"]: e for e in to_chrome_trace(tracer)["traceEvents"]}
    # pids follow sorted host-name order (stable across shard counts
    # and span completion order); children inherit the parent's.
    assert events["a"]["pid"] == 1
    assert events["b"]["pid"] == 0
    assert events["a.child"]["pid"] == 1
    assert events["a"]["tid"] == 0
    assert events["b"]["tid"] == 1
    assert events["a.child"]["tid"] == 0
    assert events["a"]["args"]["host"] == "host1"


def test_chrome_trace_marks_open_spans():
    tracer = Tracer()
    tracer.roots.append(Span(name="dangling", start_us=7.0))
    (event,) = to_chrome_trace(tracer)["traceEvents"]
    assert event["dur"] == 0.0
    assert event["args"]["open"] is True


# -- fleet serving-report document ------------------------------------


def make_fleet_report():
    from repro.fleet.scheduler import (
        FleetReport,
        InvocationOutcome,
        ServedInvocation,
        StartKind,
    )

    return FleetReport(
        served=[
            ServedInvocation(
                time_us=0.0,
                function="f0",
                kind=StartKind.SNAPSHOT,
                latency_us=200_000.0,
            ),
            ServedInvocation(
                time_us=1.0,
                function="f1",
                kind=StartKind.WARM,
                latency_us=100_000.0,
                outcome=InvocationOutcome.RETRIED,
                attempts=2,
            ),
            ServedInvocation(
                time_us=2.0,
                function="f0",
                kind=None,
                latency_us=0.0,
                outcome=InvocationOutcome.SHED,
                attempts=0,
            ),
        ]
    )


def test_fleet_report_doc_structure():
    from repro.metrics.exporters import REPORT_SCHEMA, fleet_report_doc

    doc = fleet_report_doc(make_fleet_report())
    assert doc["schema"] == REPORT_SCHEMA
    assert len(doc["invocations"]) == 3
    first = doc["invocations"][0]
    assert first["outcome"] == "ok"
    assert first["kind"] == "snapshot"
    assert first["attempts"] == 1
    shed = doc["invocations"][2]
    assert shed["outcome"] == "shed"
    assert shed["kind"] is None
    assert doc["outcome_counts"] == {
        "ok": 1, "retried": 1, "hedge-won": 0, "shed": 1, "failed": 0,
    }
    assert doc["availability"] == pytest.approx(2 / 3)
    assert doc["total_attempts"] == 3
    assert doc["retry_amplification"] == pytest.approx(1.0)
    # Latency statistics cover only the successfully served arrivals.
    assert doc["mean_latency_us"] == pytest.approx(150_000.0)
    json.dumps(doc)  # must be serializable as-is


def test_fleet_report_doc_includes_host_stats_for_clusters():
    from repro.cluster.scheduler import ClusterReport, HostStats
    from repro.metrics.exporters import fleet_report_doc

    report = ClusterReport(
        host_stats={
            "host0": HostStats(host="host0", failures=2, shed=1),
            "host1": HostStats(host="host1"),
        }
    )
    doc = fleet_report_doc(report)
    assert doc["host_failures"] == {"host0": 2, "host1": 0}
    assert doc["host_shed"] == {"host0": 1, "host1": 0}
