"""Property-based tests for loading-set construction invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loading_set import _merge_runs, _runs, build_loading_set
from repro.core.working_set import WorkingSetGroups

pages_strategy = st.sets(st.integers(min_value=0, max_value=5000), max_size=400)


@st.composite
def working_sets(draw):
    pages = sorted(draw(pages_strategy))
    groups = {}
    group = 1
    for index, page in enumerate(pages):
        if index and draw(st.booleans()):
            group += 1
        groups[page] = group
    return WorkingSetGroups(group_of=groups)


@given(pages_strategy)
def test_runs_partition_pages_exactly(pages):
    ordered = sorted(pages)
    runs = _runs(ordered)
    covered = []
    for start, npages in runs:
        covered.extend(range(start, start + npages))
    assert covered == ordered


@given(pages_strategy, st.integers(min_value=0, max_value=64))
def test_merged_runs_cover_all_pages_and_respect_gap(pages, gap):
    ordered = sorted(pages)
    merged = _merge_runs(_runs(ordered), gap)
    covered = set()
    previous_end = None
    for start, npages in merged:
        assert npages >= 1
        if previous_end is not None:
            # Surviving gaps must exceed the merge threshold.
            assert start - previous_end > gap
        previous_end = start + npages
        covered.update(range(start, start + npages))
    assert set(ordered) <= covered


@given(working_sets(), pages_strategy, st.integers(min_value=0, max_value=64))
@settings(max_examples=60)
def test_loading_set_invariants(ws, nonzero, gap):
    ls = build_loading_set(ws, nonzero, merge_gap=gap)
    essential = set(ws.pages) & set(nonzero)

    # 1. Every essential page is covered; coverage never shrinks it.
    covered = ls.covered_pages()
    assert essential <= covered
    assert ls.essential_pages == len(essential)

    # 2. Accounting adds up.
    assert ls.total_pages == sum(r.npages for r in ls.regions)
    assert ls.total_pages >= ls.essential_pages
    assert ls.gap_pages == ls.total_pages - ls.essential_pages

    # 3. Regions are disjoint in guest space.
    seen = set()
    for region in ls.regions:
        span = set(range(region.start, region.end))
        assert not (span & seen)
        seen |= span

    # 4. File offsets tile the file exactly, in list order.
    offset = 0
    for region in ls.regions:
        assert region.file_offset == offset
        offset += region.npages
    assert offset == ls.total_pages

    # 5. Regions are sorted by (group, start) and each region's group
    # is the minimum group of its member WS pages.
    keys = [(r.group, r.start) for r in ls.regions]
    assert keys == sorted(keys)
    for region in ls.regions:
        member_groups = [
            ws.group(p)
            for p in range(region.start, region.end)
            if p in ws
        ]
        assert member_groups
        assert region.group == min(member_groups)

    # 6. Merging never merges fewer regions than exist unmerged.
    assert ls.region_count <= ls.unmerged_region_count


@given(working_sets(), pages_strategy)
@settings(max_examples=40)
def test_larger_merge_gap_never_increases_region_count(ws, nonzero):
    small = build_loading_set(ws, nonzero, merge_gap=2)
    large = build_loading_set(ws, nonzero, merge_gap=32)
    assert large.region_count <= small.region_count
    assert large.total_pages >= small.total_pages
