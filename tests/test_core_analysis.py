"""Tests for working-set coverage analysis."""

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.core.analysis import (
    CoverageReport,
    faasnap_coverage,
    reap_coverage,
    trace_for,
)
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

SMALL = WorkloadProfile(
    name="small-analysis",
    description="tiny profile for coverage tests",
    core_pages=300,
    var_base_pages=150,
    var_pool_pages=600,
    anon_base_pages=200,
    anon_free_fraction=0.9,
    compute_base_us=10_000.0,
    spread_factor=5.0,
    input_b_ratio=1.6,
    total_pages=16_384,
    boot_pages=1_024,
)


@pytest.fixture(scope="module")
def platform_and_artifacts():
    platform = FaaSnapPlatform()
    handle = platform.register_function(SMALL)
    faasnap = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    reap = platform.ensure_record(handle, INPUT_A, Policy.REAP)
    return platform, faasnap, reap


def test_coverage_report_arithmetic():
    report = CoverageReport(
        touched_pages=100, prefetch_pages=80, covered_pages=60
    )
    assert report.coverage == pytest.approx(0.6)
    assert report.waste == pytest.approx(0.25)
    assert report.miss_pages == 40


def test_coverage_report_degenerate_cases():
    empty = CoverageReport(touched_pages=0, prefetch_pages=0, covered_pages=0)
    assert empty.coverage == 1.0
    assert empty.waste == 0.0


def test_same_input_has_high_coverage(platform_and_artifacts):
    _, faasnap, reap = platform_and_artifacts
    same = InputSpec(content_id=1, size_ratio=1.0)
    assert reap_coverage(reap, same).coverage > 0.95
    assert faasnap_coverage(faasnap, same).coverage > 0.95


def test_changed_input_erodes_reap_coverage_more(platform_and_artifacts):
    """The quantified version of the paper's 3.4 observation (2)."""
    _, faasnap, reap = platform_and_artifacts
    changed = InputSpec(content_id=9, size_ratio=2.5)
    reap_report = reap_coverage(reap, changed)
    faasnap_report = faasnap_coverage(faasnap, changed)
    assert reap_report.coverage < 0.9
    assert faasnap_report.coverage > reap_report.coverage
    assert faasnap_report.miss_pages < reap_report.miss_pages


def test_faasnap_trades_waste_for_coverage(platform_and_artifacts):
    _, faasnap, reap = platform_and_artifacts
    changed = InputSpec(content_id=9, size_ratio=1.0)
    # Host page recording + gap merging prefetch more than REAP's
    # exact fault set...
    assert faasnap.loading_set.total_pages > 0
    faasnap_report = faasnap_coverage(faasnap, changed)
    reap_report = reap_coverage(reap, changed)
    assert faasnap_report.prefetch_pages >= reap_report.prefetch_pages * 0.8
    # ... which is the price of tolerance.
    assert faasnap_report.coverage >= reap_report.coverage


def test_wrong_artifacts_rejected(platform_and_artifacts):
    _, faasnap, reap = platform_and_artifacts
    with pytest.raises(ValueError):
        faasnap_coverage(reap, INPUT_A)
    with pytest.raises(ValueError):
        reap_coverage(faasnap, INPUT_A)


def test_trace_reuse_matches_fresh(platform_and_artifacts):
    _, faasnap, _ = platform_and_artifacts
    changed = InputSpec(content_id=2, size_ratio=1.2)
    trace = trace_for(faasnap, changed)
    with_trace = faasnap_coverage(faasnap, changed, trace=trace)
    without = faasnap_coverage(faasnap, changed)
    assert with_trace == without
