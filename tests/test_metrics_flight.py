"""Flight recorder: ring bounding, dump retention, trigger
accounting, and the scheduler integration that dumps postmortems on
failures, crashes, and burn-rate alerts."""

import json

import pytest

from repro.metrics.flight import (
    CLUSTER_RING,
    FLIGHT_SCHEMA,
    FlightRecorder,
    render_postmortem,
)


def test_ring_is_bounded_per_host():
    recorder = FlightRecorder(capacity_per_host=3)
    for i in range(10):
        recorder.record(float(i), "host0", "tick", n=i)
    recorder.record(99.0, "host1", "other")
    doc = recorder.document()
    assert [e["n"] for e in doc["rings"]["host0"]] == [7, 8, 9]
    assert len(doc["rings"]["host1"]) == 1
    assert recorder.recorded == 11


def test_dump_snapshots_all_rings_with_context():
    recorder = FlightRecorder()
    recorder.record(1.0, "host0", "shed", load=9)
    recorder.record(2.0, CLUSTER_RING, "alert", rule="fast")
    postmortem = recorder.dump(3.0, "invocation-failed", function="f0")
    assert postmortem["reason"] == "invocation-failed"
    assert postmortem["context"] == {"function": "f0"}
    assert sorted(postmortem["rings"]) == [CLUSTER_RING, "host0"]
    # The snapshot is a copy: later records don't mutate it.
    recorder.record(4.0, "host0", "later")
    assert len(postmortem["rings"]["host0"]) == 1


def test_dump_cap_keeps_first_n_but_counts_every_trigger():
    recorder = FlightRecorder(max_postmortems=2)
    assert recorder.dump(1.0, "a") is not None
    assert recorder.dump(2.0, "b") is not None
    assert recorder.dump(3.0, "c") is None
    assert [p["reason"] for p in recorder.postmortems] == ["a", "b"]
    assert recorder.dump_triggers == 3
    assert recorder.document()["postmortems_retained"] == 2


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity_per_host=0)
    with pytest.raises(ValueError):
        FlightRecorder(max_postmortems=0)


def test_document_round_trips_through_json():
    recorder = FlightRecorder()
    recorder.record(1.5, "host0", "retry", round=2)
    recorder.dump(2.0, "host-crashed", host="host0")
    doc = json.loads(recorder.to_json())
    assert doc["schema"] == FLIGHT_SCHEMA
    assert doc["recorded"] == 1
    assert doc["postmortems"][0]["context"] == {"host": "host0"}


def test_render_postmortem_is_readable():
    recorder = FlightRecorder()
    recorder.record(1_000.0, "host0", "shed", load=9)
    postmortem = recorder.dump(2_000.0, "invocation-failed", function="f7")
    text = render_postmortem(postmortem)
    assert "invocation-failed" in text
    assert "function: f7" in text
    assert "shed load=9" in text


# -- scheduler integration ---------------------------------------------


def _storm_run(flight, slo=None):
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.faults import FaultPlan, RecoveryPolicy
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    fleet = [
        FleetFunction(name=f"f{i}", profile_name="json", mean_interarrival_us=1e6)
        for i in range(3)
    ]
    arrivals = [
        Arrival(time_us=i * 120_000.0, function=f"f{i % 3}") for i in range(60)
    ]
    trace = ArrivalTrace(arrivals=arrivals, duration_us=60 * 120_000.0)
    plan = FaultPlan.from_dict(
        {
            "device_faults": [
                {
                    "scope": "*",
                    "start_us": 500_000.0,
                    "duration_us": 3_000_000.0,
                    "latency_factor": 40.0,
                    "error_rate": 0.6,
                }
            ],
            "host_crashes": [
                {
                    "host": "host1",
                    "at_us": 1_000_000.0,
                    "reboot_after_us": 2_000_000.0,
                }
            ],
        }
    )
    config = ClusterConfig(
        num_hosts=4, seed=7, recovery=RecoveryPolicy.full()
    )
    return ClusterSimulator(fleet, config).run(
        trace, fault_plan=plan, slo=slo, flight=flight
    )


def test_storm_run_dumps_postmortems_without_perturbation():
    flight = FlightRecorder()
    report = _storm_run(flight)
    plain = _storm_run(None)
    assert flight.recorded > 0
    assert flight.dump_triggers > 0
    assert flight.postmortems, "storm produced no postmortem"
    reasons = {p["reason"] for p in flight.postmortems}
    assert "host-crash" in reasons
    # Zero perturbation: identical served stream with and without.
    assert [round(s.latency_us, 6) for s in report.served] == [
        round(s.latency_us, 6) for s in plain.served
    ]


def test_burn_rate_alert_triggers_a_dump():
    from repro.metrics.slo import SloMonitor

    flight = FlightRecorder()
    slo = SloMonitor.default()
    _storm_run(flight, slo=slo)
    assert slo.alerts, "storm did not fire a burn-rate alert"
    alert_dumps = [
        p for p in flight.postmortems if p["reason"] == "burn-rate-alert"
    ]
    assert alert_dumps
    assert alert_dumps[0]["context"]["alert"]["objective"] in {
        o.name for o in slo.objectives
    }
