"""Tests for adaptive snapshot re-recording."""

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveSnapshotManager,
    slow_fault_count,
    slow_fault_fraction,
)
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

SMALL = WorkloadProfile(
    name="small-adaptive",
    description="tiny profile for adaptive tests",
    core_pages=300,
    var_base_pages=200,
    var_pool_pages=800,
    anon_base_pages=150,
    compute_base_us=10_000.0,
    spread_factor=5.0,
    input_b_ratio=1.5,
    total_pages=16_384,
    boot_pages=1_024,
)


def make_manager(stale_slow_faults=20, backoff=1):
    platform = FaaSnapPlatform()
    handle = platform.register_function(SMALL)
    manager = AdaptiveSnapshotManager(
        platform,
        handle,
        config=AdaptiveConfig(
            stale_slow_faults=stale_slow_faults,
            min_invocations_between_records=backoff,
        ),
    )
    return manager


def test_config_validation():
    with pytest.raises(ValueError):
        AdaptiveConfig(stale_slow_faults=0)
    with pytest.raises(ValueError):
        AdaptiveConfig(min_invocations_between_records=0)


def test_warm_policy_rejected():
    platform = FaaSnapPlatform()
    handle = platform.register_function(SMALL)
    with pytest.raises(ValueError):
        AdaptiveSnapshotManager(platform, handle, policy=Policy.WARM)


def test_stable_input_never_re_records():
    manager = make_manager()
    for _ in range(4):
        _, re_recorded = manager.invoke(INPUT_A)
        assert not re_recorded
    assert manager.stats.re_records == 0
    assert manager.record_input == INPUT_A


def test_drifted_input_triggers_re_record_and_recovers():
    manager = make_manager(stale_slow_faults=20)
    drifted = InputSpec(content_id=7, size_ratio=3.0)
    first, re_recorded = manager.invoke(drifted)
    assert slow_fault_count(first) > 20
    assert re_recorded
    assert manager.record_input == drifted
    # The refreshed snapshot serves the drifted workload faster.
    second, re_recorded_again = manager.invoke(drifted)
    assert not re_recorded_again
    assert slow_fault_count(second) < slow_fault_count(first)
    assert second.total_us < first.total_us


def test_backoff_limits_re_record_rate():
    manager = make_manager(stale_slow_faults=20, backoff=3)
    inputs = [
        InputSpec(content_id=10 + i, size_ratio=2.0 + i) for i in range(4)
    ]
    re_records = sum(1 for spec in inputs if manager.invoke(spec)[1])
    assert re_records <= 2
    assert manager.stats.invocations == 4
    assert len(manager.stats.slow_counts) == 4


def test_slow_fault_helpers_on_empty_result():
    from repro.core.restore import InvocationResult

    empty = InvocationResult(
        policy=Policy.FAASNAP,
        function="x",
        input=INPUT_A,
        setup_us=0.0,
        invoke_us=0.0,
    )
    assert slow_fault_fraction(empty) == 0.0
    assert slow_fault_count(empty) == 0
