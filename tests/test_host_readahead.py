"""Tests for the adaptive readahead policy."""

import pytest

from repro.host import HostParams, PageCache, ReadaheadPolicy
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore

PARAMS = HostParams(readahead_pages=8, readahead_max_pages=64)


@pytest.fixture
def rig():
    env = Environment()
    device = BlockDevice(env, DeviceSpec("d", 100, 10, 1000, 1e6))
    store = FileStore(env, device)
    f = store.create("mem", 4096, pages={i: i + 1 for i in range(4096)})
    return env, device, PageCache(env), f


def test_window_starts_at_base(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)
    assert policy.next_window_size("mem", 0) == 8


def test_sequential_faults_ramp_up(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)
    sizes = []
    cursor = 0
    for _ in range(5):
        window = policy.window(f, cache, cursor)
        sizes.append(len(window))
        cursor += len(window)
    assert sizes == [8, 16, 32, 64, 64]  # doubles, capped at max


def test_random_fault_resets_window(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)
    policy.window(f, cache, 0)
    policy.window(f, cache, 8)  # sequential: ramps to 16
    assert policy.next_window_size("mem", 2000) == 8  # jump: reset


def test_slack_still_counts_as_sequential(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)
    policy.window(f, cache, 0)  # covers [0, 8)
    # A fault a few pages past the window end is still a stream.
    assert policy.next_window_size("mem", 10) == 16


def test_streams_tracked_per_file(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)
    policy.window(f, cache, 0)
    # A different file has independent stream state.
    assert policy.next_window_size("other", 8) == 8


def test_fault_read_failure_abandons_pending(rig):
    env, device, cache, f = rig
    policy = ReadaheadPolicy(PARAMS)

    class Boom(Exception):
        pass

    def broken_read(page, npages):
        raise Boom()
        yield  # pragma: no cover - makes this a generator

    f.read = broken_read

    def proc():
        yield from policy.fault_read(f, cache, 0)

    process = env.process(proc())
    with pytest.raises(Boom):
        env.run(until=process)
    # No pending markers leak: a later fault can retry.
    for page in range(8):
        assert cache.pending_event("mem", page) is None
        assert not cache.peek("mem", page)


def test_device_queue_wait_accumulates():
    env = Environment()
    device = BlockDevice(
        env, DeviceSpec("d", 100, 10, 1000, 1e6, queue_depth=1)
    )

    def reader(offset):
        yield from device.read(offset, 4096)

    env.process(reader(0))
    env.process(reader(1 << 20))
    env.run()
    assert device.stats.queue_wait_us > 0
