"""Unit tests for loading-set construction and the loading-set file."""

import pytest

from repro.core.loading_set import (
    LoadingSet,
    build_loading_set,
    write_loading_set_file,
)
from repro.core.working_set import WorkingSetGroups
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import create_snapshot


def groups(mapping):
    return WorkingSetGroups(group_of=dict(mapping))


def test_loading_set_is_ws_intersect_nonzero():
    ws = groups({1: 1, 2: 1, 10: 1, 11: 2})
    ls = build_loading_set(ws, nonzero_pages=[1, 2, 11, 50], merge_gap=0)
    covered = ls.covered_pages()
    assert covered == {1, 2, 11}
    assert ls.essential_pages == 3
    assert 10 not in covered  # zero page excluded (released set)
    assert 50 not in covered  # non-WS page excluded (cold set)


def test_regions_merge_within_gap():
    # Pages 0-1 and 5-6: gap of 3 pages.
    ws = groups({0: 1, 1: 1, 5: 1, 6: 1})
    nonzero = [0, 1, 5, 6]
    merged = build_loading_set(ws, nonzero, merge_gap=3)
    assert merged.region_count == 1
    assert merged.total_pages == 7  # includes gap pages 2-4
    assert merged.gap_pages == 3
    split = build_loading_set(ws, nonzero, merge_gap=2)
    assert split.region_count == 2
    assert split.total_pages == 4
    assert split.gap_pages == 0


def test_unmerged_region_count_reported():
    ws = groups({0: 1, 2: 1, 4: 1})
    ls = build_loading_set(ws, [0, 2, 4], merge_gap=32)
    assert ls.unmerged_region_count == 3
    assert ls.region_count == 1


def test_regions_sorted_by_group_then_address():
    # Page 100 is group 1; pages 0-1 are group 2; page 200 group 1.
    ws = groups({100: 1, 200: 1, 0: 2, 1: 2})
    ls = build_loading_set(ws, [0, 1, 100, 200], merge_gap=0)
    order = [(r.group, r.start) for r in ls.regions]
    assert order == [(1, 100), (1, 200), (2, 0)]


def test_region_group_is_min_group_of_members():
    # One merged region containing group-3 and group-1 pages.
    ws = groups({0: 3, 2: 1})
    ls = build_loading_set(ws, [0, 2], merge_gap=5)
    assert ls.region_count == 1
    assert ls.regions[0].group == 1


def test_file_offsets_are_contiguous_in_region_order():
    ws = groups({0: 2, 1: 2, 50: 1, 51: 1, 52: 1})
    ls = build_loading_set(ws, [0, 1, 50, 51, 52], merge_gap=0)
    assert [r.file_offset for r in ls.regions] == [0, 3]
    assert ls.total_pages == 5


def test_negative_merge_gap_rejected():
    with pytest.raises(ValueError):
        build_loading_set(groups({}), [], merge_gap=-1)


def test_empty_loading_set():
    ls = build_loading_set(groups({}), [])
    assert ls.region_count == 0
    assert ls.total_pages == 0
    assert ls.size_mb == 0.0


def test_write_loading_set_file_layout():
    env = Environment()
    device = BlockDevice(env, DeviceSpec("d", 100, 10, 1000, 1e6))
    store = FileStore(env, device)
    snapshot = create_snapshot(
        store, "fn", 100, {0: 10, 1: 11, 50: 60, 51: 61}
    )
    ws = groups({50: 1, 51: 1, 0: 2, 1: 2})
    ls = build_loading_set(ws, snapshot.nonzero_pages(), merge_gap=0)
    f = write_loading_set_file(store, "fn.ls", ls, snapshot)
    # Group 1 region (guest 50-51) comes first in the file.
    assert f.page_value(0) == 60
    assert f.page_value(1) == 61
    assert f.page_value(2) == 10
    assert f.page_value(3) == 11
    assert not f.sparse


def test_write_loading_set_file_gap_pages_are_zero():
    env = Environment()
    device = BlockDevice(env, DeviceSpec("d", 100, 10, 1000, 1e6))
    store = FileStore(env, device)
    snapshot = create_snapshot(store, "fn", 100, {0: 10, 3: 13})
    ws = groups({0: 1, 3: 1})
    ls = build_loading_set(ws, snapshot.nonzero_pages(), merge_gap=5)
    f = write_loading_set_file(store, "fn.ls", ls, snapshot)
    assert f.num_pages == 4
    assert f.page_value(0) == 10
    assert f.page_value(1) == 0  # gap page, stored as a real zero block
    assert f.page_value(3) == 13
