"""Unit tests for the fault injector and the health monitor."""

import pytest

from repro.faults import (
    SCOPE_ALL,
    DeviceFault,
    FaultInjector,
    FaultPlan,
    HealthMonitor,
    HealthPolicy,
    HostCrash,
    SnapshotCorruption,
)
from repro.sim import Environment
from repro.storage.device import BlockDevice, DeviceSpec

SPEC = DeviceSpec(
    name="test-nvme",
    random_latency_us=80.0,
    sequential_latency_us=20.0,
    bandwidth_bytes_per_us=2_000.0,
    iops=400_000.0,
)


class FakeTarget:
    """Duck-typed injector target recording every call."""

    def __init__(self, env, devices=()):
        self.env = env
        self.devices = list(devices)
        self.crashes = []
        self.reboots = []

    def devices_for_scope(self, scope):
        return self.devices

    def crash_host(self, host_id):
        self.crashes.append((self.env.now, host_id))

    def reboot_host(self, host_id):
        self.reboots.append((self.env.now, host_id))


def run_plan(plan, devices_factory=None):
    env = Environment(seed=3)
    devices = devices_factory(env) if devices_factory else []
    target = FakeTarget(env, devices)
    injector = FaultInjector(env, plan)
    injector.arm(target)
    env.run()
    return env, target, injector


# -- arming ------------------------------------------------------------


def test_empty_plan_spawns_nothing():
    env = Environment(seed=1)
    injector = FaultInjector(env)
    injector.arm(FakeTarget(env))
    assert not env._queue
    env.run()
    assert env.now == 0.0
    assert injector.summary() == {
        "device_windows_opened": 0,
        "device_windows_closed": 0,
        "host_crashes": 0,
        "host_reboots": 0,
        "corruptions_marked": 0,
        "corruptions_detected": 0,
        "corruptions_detected_restore": 0,
        "corruptions_detected_scrub": 0,
        "fail_slows_applied": 0,
        "fail_slows_recovered": 0,
    }


def test_double_arm_raises():
    env = Environment(seed=1)
    injector = FaultInjector(env)
    injector.arm(FakeTarget(env))
    with pytest.raises(RuntimeError):
        injector.arm(FakeTarget(env))


# -- device windows ----------------------------------------------------


def test_device_window_opens_and_closes():
    plan = FaultPlan(
        device_faults=[
            DeviceFault(
                scope=SCOPE_ALL,
                start_us=100.0,
                duration_us=50.0,
                latency_factor=4.0,
            )
        ]
    )
    seen = []
    env = Environment(seed=3)
    device = BlockDevice(env, SPEC)
    target = FakeTarget(env, [device])
    injector = FaultInjector(env, plan)
    injector.arm(target)

    def probe():
        yield env.timeout(120.0)  # inside the window
        seen.append(device.degradation)
        yield env.timeout(100.0)  # after it closes
        seen.append(device.degradation)

    env.process(probe())
    env.run()
    inside, after = seen
    assert inside is not None and inside.latency_factor == 4.0
    assert after is None
    assert injector.device_windows_opened == 1
    assert injector.device_windows_closed == 1


def test_permanent_device_window_never_closes():
    plan = FaultPlan(
        device_faults=[
            DeviceFault(scope=SCOPE_ALL, start_us=10.0, latency_factor=2.0)
        ]
    )
    env, target, injector = run_plan(
        plan, lambda env: [BlockDevice(env, SPEC)]
    )
    assert target.devices[0].degradation is not None
    assert injector.device_windows_opened == 1
    assert injector.device_windows_closed == 0


def test_overlapping_windows_combine_and_unwind():
    env = Environment(seed=3)
    device = BlockDevice(env, SPEC)
    plan = FaultPlan(
        device_faults=[
            DeviceFault(
                scope=SCOPE_ALL, start_us=0.0, duration_us=100.0,
                latency_factor=2.0,
            ),
            DeviceFault(
                scope=SCOPE_ALL, start_us=50.0, duration_us=100.0,
                latency_factor=3.0,
            ),
        ]
    )
    target = FakeTarget(env, [device])
    FaultInjector(env, plan).arm(target)
    seen = {}

    def probe():
        yield env.timeout(75.0)
        seen["both"] = device.degradation.latency_factor
        yield env.timeout(50.0)  # first closed, second still open
        seen["second"] = device.degradation.latency_factor

    env.process(probe())
    env.run()
    assert seen["both"] == 6.0  # factors multiply while overlapping
    assert seen["second"] == 3.0
    assert device.degradation is None  # both unwound at the end


# -- host crashes ------------------------------------------------------


def test_crash_and_reboot_fire_at_planned_times():
    plan = FaultPlan(
        host_crashes=[
            HostCrash(host="host1", at_us=500.0, reboot_after_us=250.0),
            HostCrash(host="host2", at_us=600.0),
        ]
    )
    env, target, injector = run_plan(plan)
    assert target.crashes == [(500.0, "host1"), (600.0, "host2")]
    assert target.reboots == [(750.0, "host1")]
    assert injector.host_crashes == 2
    assert injector.host_reboots == 1


def test_epoch_offsets_fault_times():
    env = Environment(seed=3)
    target = FakeTarget(env)
    plan = FaultPlan(host_crashes=[HostCrash(host="h", at_us=100.0)])
    FaultInjector(env, plan).arm(target, epoch_us=1_000.0)
    env.run()
    assert target.crashes == [(1_100.0, "h")]


# -- snapshot corruption -----------------------------------------------


def test_corruption_is_latent_and_detection_clears():
    plan = FaultPlan(
        corruptions=[
            SnapshotCorruption(host="host0", function="f", at_us=50.0)
        ]
    )
    env, target, injector = run_plan(plan)
    assert injector.corruptions_marked == 1
    # Other hosts/functions unaffected.
    assert not injector.check_snapshot("host1", "f")
    assert not injector.check_snapshot("host0", "g")
    # First validation detects; the mark clears so the retry succeeds.
    assert injector.check_snapshot("host0", "f")
    assert not injector.check_snapshot("host0", "f")
    assert injector.corruptions_detected == 1


# -- HealthMonitor -----------------------------------------------------


class FakeHost:
    def __init__(self, host_id):
        self.host_id = host_id
        self.crashed = False


class FakeState:
    def __init__(self, host_id):
        self.host = FakeHost(host_id)
        self.healthy = True
        self.error_times = []
        self.last_bad_us = 0.0


POLICY = HealthPolicy(
    enabled=True,
    check_interval_us=100.0,
    error_threshold=3,
    window_us=1_000.0,
    reintegrate_after_us=500.0,
)


def test_note_failure_drains_at_threshold():
    env = Environment(seed=1)
    state = FakeState("h0")
    monitor = HealthMonitor(env, POLICY, [state])
    monitor.note_failure(state)
    monitor.note_failure(state)
    assert state.healthy
    monitor.note_failure(state)
    assert not state.healthy
    assert monitor.drains == 1


def test_crashed_host_drains_on_sweep():
    env = Environment(seed=1)
    state = FakeState("h0")
    monitor = HealthMonitor(env, POLICY, [state])
    state.host.crashed = True
    monitor.check_now()
    assert not state.healthy


def test_reintegration_requires_quiet_period():
    env = Environment(seed=1)
    state = FakeState("h0")
    monitor = HealthMonitor(env, POLICY, [state])
    for _ in range(3):
        monitor.note_failure(state)
    assert not state.healthy
    monitor.start()
    env.run(until=2_000.0)
    monitor.stop()
    env.run()
    # Errors aged out of the window and the quiet period elapsed.
    assert state.healthy
    assert monitor.reintegrations == 1


def test_old_errors_age_out_of_window():
    env = Environment(seed=1)
    state = FakeState("h0")
    monitor = HealthMonitor(env, POLICY, [state])
    state.error_times = [0.0, 1.0]

    def late_failure():
        yield env.timeout(5_000.0)
        monitor.note_failure(state)

    env.process(late_failure())
    env.run()
    # The two ancient errors dropped; one recent failure is below the
    # threshold of three.
    assert state.healthy
    assert state.error_times == [5_000.0]


def test_monitor_callbacks_and_double_start():
    env = Environment(seed=1)
    state = FakeState("h0")
    drained, restored = [], []
    monitor = HealthMonitor(
        env,
        POLICY,
        [state],
        on_drain=lambda s: drained.append(s.host.host_id),
        on_reintegrate=lambda s: restored.append(s.host.host_id),
    )
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()
    for _ in range(3):
        monitor.note_failure(state)
    assert drained == ["h0"]
    env.run(until=2_000.0)
    monitor.stop()
    env.run()
    assert restored == ["h0"]
