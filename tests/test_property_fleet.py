"""Property-based tests for the fleet scheduler's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import Policy
from repro.fleet.costs import FunctionCosts
from repro.fleet.scheduler import FleetConfig, FleetSimulator, StartKind
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

SECOND = 1_000_000.0
MINUTE = 60 * SECOND

COSTS = FunctionCosts(
    profile_name="json",
    policy=Policy.FAASNAP,
    warm_us=100_000.0,
    snapshot_us=250_000.0,
    cold_us=2_500_000.0,
    warm_memory_mb=150.0,
)


@st.composite
def arrival_traces(draw):
    functions = draw(st.integers(min_value=1, max_value=4))
    names = [f"f{i}" for i in range(functions)]
    count = draw(st.integers(min_value=1, max_value=60))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=120 * MINUTE),
                min_size=count,
                max_size=count,
            )
        )
    )
    arrivals = [
        Arrival(
            time_us=t,
            function=names[draw(st.integers(0, functions - 1))],
        )
        for t in times
    ]
    return names, ArrivalTrace(
        arrivals=arrivals, duration_us=120 * MINUTE
    )


def build(names, ttl_minutes, budget_mb, snapshots):
    fleet = [
        FleetFunction(name=n, profile_name="json", mean_interarrival_us=MINUTE)
        for n in names
    ]
    config = FleetConfig(
        restore_policy=Policy.FAASNAP,
        keep_alive_ttl_us=ttl_minutes * MINUTE,
        memory_budget_mb=budget_mb,
        snapshots_enabled=snapshots,
    )
    return FleetSimulator(fleet, config, costs={n: COSTS for n in names})


@given(
    arrival_traces(),
    st.floats(min_value=0.0, max_value=60.0),
    st.floats(min_value=200.0, max_value=4000.0),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_every_arrival_served_with_valid_latency(trace_data, ttl, budget, snapshots):
    names, trace = trace_data
    report = build(names, ttl, budget, snapshots).run(trace)
    assert report.count() == len(trace)
    valid = {COSTS.warm_us, COSTS.snapshot_us, COSTS.cold_us}
    for served in report.served:
        assert served.latency_us in valid
        if not snapshots:
            assert served.kind is not StartKind.SNAPSHOT


@given(arrival_traces(), st.floats(min_value=1.0, max_value=60.0))
@settings(max_examples=40, deadline=None)
def test_first_invocation_of_each_function_is_cold(trace_data, ttl):
    names, trace = trace_data
    report = build(names, ttl, 4000.0, True).run(trace)
    seen = set()
    for served in report.served:
        if served.function not in seen:
            assert served.kind is StartKind.COLD
            seen.add(served.function)


@given(arrival_traces())
@settings(max_examples=40, deadline=None)
def test_memory_never_exceeds_budget_plus_one_vm(trace_data):
    names, trace = trace_data
    budget = 500.0
    report = build(names, 30.0, budget, True).run(trace)
    # The scheduler evicts idle VMs to fit; a burst of concurrently
    # *running* VMs can exceed the budget (they cannot be evicted),
    # but samples never exceed budget + the in-flight overcommit.
    running_bound = budget + COSTS.warm_memory_mb * len(trace)
    assert all(m <= running_bound for m in report.memory_samples_mb)
    assert all(m >= 0 for m in report.memory_samples_mb)


@given(arrival_traces())
@settings(max_examples=30, deadline=None)
def test_report_fractions_sum_to_one(trace_data):
    names, trace = trace_data
    report = build(names, 15.0, 4000.0, True).run(trace)
    total = sum(
        report.fraction(kind)
        for kind in (StartKind.WARM, StartKind.SNAPSHOT, StartKind.COLD)
    )
    assert abs(total - 1.0) < 1e-9
