"""Unit tests for the host page cache."""

import pytest

from repro.host import PageCache
from repro.sim import Environment, SimulationError


@pytest.fixture
def cache():
    return PageCache(Environment())


def test_empty_cache(cache):
    assert len(cache) == 0
    assert not cache.contains("f", 0)
    assert not cache.peek("f", 0)


def test_insert_and_contains(cache):
    cache.insert("f", 3)
    assert cache.contains("f", 3)
    assert not cache.contains("f", 4)
    assert not cache.contains("g", 3)
    assert len(cache) == 1


def test_insert_range(cache):
    cache.insert_range("f", 10, 5)
    assert cache.pages_for_file("f") == [10, 11, 12, 13, 14]
    assert cache.count_for_file("f") == 5


def test_reinsert_is_idempotent(cache):
    cache.insert("f", 1)
    cache.insert("f", 1)
    assert len(cache) == 1
    assert cache.insertions == 1


def test_drop_file(cache):
    cache.insert_range("a", 0, 3)
    cache.insert_range("b", 0, 2)
    dropped = cache.drop_file("a")
    assert dropped == 3
    assert cache.count_for_file("a") == 0
    assert cache.count_for_file("b") == 2


def test_drop_all(cache):
    cache.insert_range("a", 0, 3)
    assert cache.drop_all() == 3
    assert len(cache) == 0


def test_lru_eviction():
    cache = PageCache(Environment(), capacity_pages=3)
    for page in range(3):
        cache.insert("f", page)
    cache.contains("f", 0)  # touch page 0: now most recent
    cache.insert("f", 3)  # evicts page 1 (least recent)
    assert cache.peek("f", 0)
    assert not cache.peek("f", 1)
    assert cache.peek("f", 2)
    assert cache.peek("f", 3)
    assert cache.evictions == 1


def test_peek_does_not_touch_lru():
    cache = PageCache(Environment(), capacity_pages=2)
    cache.insert("f", 0)
    cache.insert("f", 1)
    cache.peek("f", 0)  # must NOT refresh page 0
    cache.insert("f", 2)  # evicts page 0
    assert not cache.peek("f", 0)
    assert cache.peek("f", 1)


def test_capacity_validation():
    with pytest.raises(SimulationError):
        PageCache(Environment(), capacity_pages=0)


def test_pending_read_lifecycle():
    env = Environment()
    cache = PageCache(env)
    event = cache.begin_pending("f", 5)
    assert cache.pending_event("f", 5) is event
    assert not event.triggered
    cache.insert("f", 5)
    assert event.triggered
    assert cache.pending_event("f", 5) is None
    assert cache.peek("f", 5)


def test_begin_pending_twice_returns_same_event():
    cache = PageCache(Environment())
    first = cache.begin_pending("f", 1)
    second = cache.begin_pending("f", 1)
    assert first is second


def test_begin_pending_on_resident_page_rejected():
    cache = PageCache(Environment())
    cache.insert("f", 1)
    with pytest.raises(SimulationError):
        cache.begin_pending("f", 1)


def test_abandon_pending_fires_event_without_inserting():
    cache = PageCache(Environment())
    event = cache.begin_pending("f", 7)
    cache.abandon_pending("f", 7)
    assert event.triggered
    assert not cache.peek("f", 7)
    assert cache.pending_event("f", 7) is None


def test_waiter_blocks_until_pending_completes():
    env = Environment()
    cache = PageCache(env)
    log = []

    def loader():
        cache.begin_pending("f", 0)
        yield env.timeout(50)
        cache.insert("f", 0)

    def faulter():
        yield env.timeout(1)
        pending = cache.pending_event("f", 0)
        assert pending is not None
        yield pending
        log.append(env.now)

    env.process(loader())
    env.process(faulter())
    env.run()
    assert log == [50.0]


def test_warm_file(cache):
    cache.warm_file("mem", range(100))
    assert cache.count_for_file("mem") == 100


def test_resident_set_snapshot(cache):
    cache.insert("a", 1)
    cache.insert("b", 2)
    assert cache.resident_set() == {("a", 1), ("b", 2)}


def test_drop_file_leaves_pending_untouched():
    cache = PageCache(Environment())
    cache.insert("f", 0)
    event = cache.begin_pending("f", 1)
    cache.drop_file("f")
    assert cache.pending_event("f", 1) is event
    assert not cache.peek("f", 0)
