"""Unit tests for the page-fault handler and readahead."""

import pytest

from repro.host import (
    AddressSpace,
    FaultHandler,
    FaultKind,
    HostParams,
    PageCache,
    ReadaheadPolicy,
    UserfaultfdManager,
)
from repro.sim import Environment, SimulationError
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.storage.filestore import PAGE_SIZE


PARAMS = HostParams()


class Rig:
    """A small host rig: device, file store, cache, space, handler."""

    def __init__(self, num_pages=256, params=PARAMS, uffd=False):
        self.env = Environment()
        self.device = BlockDevice(
            self.env,
            DeviceSpec("d", 100.0, 10.0, 1000.0, 1e6, queue_depth=8),
        )
        self.store = FileStore(self.env, self.device)
        self.cache = PageCache(self.env)
        self.space = AddressSpace(num_pages)
        self.params = params
        self.uffd = (
            UserfaultfdManager(self.env, params) if uffd else None
        )
        self.handler = FaultHandler(
            self.env, params, self.cache, self.space, uffd=self.uffd
        )

    def run_accesses(self, accesses):
        """accesses: list of (page, write, value); returns records."""
        records = []

        def proc():
            for page, write, value in accesses:
                record = yield from self.handler.access(page, write, value)
                records.append(record)

        self.env.process(proc())
        self.env.run()
        return records


def test_anon_fault_cost_and_install():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    (record,) = rig.run_accesses([(5, False, None)])
    assert record.kind is FaultKind.ANON
    assert record.duration_us == pytest.approx(PARAMS.anon_fault_us)
    assert rig.space.is_installed(5)
    assert 5 in rig.space.ept


def test_second_access_is_free():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    records = rig.run_accesses([(5, False, None), (5, False, None)])
    assert records[1].kind is FaultKind.NONE
    assert records[1].duration_us == 0.0
    assert rig.handler.stats.count() == 1


def test_minor_fault_when_page_cached():
    rig = Rig()
    f = rig.store.create("mem", 256, pages={7: 70})
    rig.space.mmap_file(0, 256, f, 0)
    rig.cache.insert("mem", 7)
    (record,) = rig.run_accesses([(7, False, None)])
    assert record.kind is FaultKind.MINOR
    assert record.duration_us == pytest.approx(PARAMS.minor_fault_us)
    assert record.block_requests == 0
    assert rig.space.pte[7] == 70


def test_major_fault_reads_from_disk_with_readahead():
    rig = Rig()
    pages = {i: i + 1 for i in range(256)}
    f = rig.store.create("mem", 256, pages=pages)
    rig.space.mmap_file(0, 256, f, 0)
    (record,) = rig.run_accesses([(10, False, None)])
    assert record.kind is FaultKind.MAJOR
    assert record.block_requests == 1
    assert record.bytes_read == PARAMS.readahead_pages * PAGE_SIZE
    assert record.duration_us > PARAMS.minor_fault_us
    # Readahead cached the neighbours.
    assert rig.cache.peek("mem", 10)
    assert rig.cache.peek("mem", 10 + PARAMS.readahead_pages - 1)
    assert not rig.cache.peek("mem", 10 + PARAMS.readahead_pages)


def test_access_after_readahead_is_minor():
    rig = Rig()
    f = rig.store.create("mem", 256, pages={i: i + 1 for i in range(256)})
    rig.space.mmap_file(0, 256, f, 0)
    records = rig.run_accesses([(10, False, None), (11, False, None)])
    assert records[0].kind is FaultKind.MAJOR
    assert records[1].kind is FaultKind.MINOR


def test_sparse_hole_fault_is_minor_without_io():
    rig = Rig()
    f = rig.store.create("mem", 256, pages={}, sparse=True)
    rig.space.mmap_file(0, 256, f, 0)
    (record,) = rig.run_accesses([(3, False, None)])
    assert record.kind is FaultKind.MINOR
    assert rig.device.stats.requests == 0
    assert rig.space.pte[3] == 0


def test_fault_waits_on_pending_read_without_own_io():
    rig = Rig()
    f = rig.store.create("mem", 256, pages={i: 1 for i in range(256)})
    rig.space.mmap_file(0, 256, f, 0)
    records = []

    def loader():
        rig.cache.begin_pending("mem", 20)
        yield from f.read(20, 1)
        rig.cache.insert("mem", 20)

    def guest():
        yield rig.env.timeout(1)
        record = yield from rig.handler.access(20)
        records.append(record)

    rig.env.process(loader())
    rig.env.process(guest())
    rig.env.run()
    (record,) = records
    assert record.kind is FaultKind.MAJOR
    assert record.block_requests == 0  # the loader's read, not ours
    assert rig.device.stats.requests == 1


def test_present_fault_after_pte_preinstall():
    """UFFDIO_COPY-installed pages take only the fast KVM fixup."""
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    rig.space.install_pte(9, 42)
    (record,) = rig.run_accesses([(9, False, None)])
    assert record.kind is FaultKind.PRESENT
    assert record.duration_us == pytest.approx(PARAMS.present_fault_us)


def test_write_to_anon_page():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    (record,) = rig.run_accesses([(4, True, 123)])
    assert record.kind is FaultKind.ANON
    assert rig.space.backing_value(4) == 123


def test_write_requires_value():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    with pytest.raises(SimulationError):
        rig.run_accesses([(4, True, None)])


def test_cow_break_on_first_write_to_file_page():
    rig = Rig()
    f = rig.store.create("mem", 256, pages={2: 22})
    rig.space.mmap_file(0, 256, f, 0)
    rig.cache.insert("mem", 2)
    records = rig.run_accesses(
        [(2, False, None), (2, True, 55), (2, True, 66)]
    )
    assert records[0].kind is FaultKind.MINOR
    assert records[1].kind is FaultKind.COW
    assert records[2].kind is FaultKind.NONE  # already dirty
    assert rig.space.backing_value(2) == 66
    assert f.page_value(2) == 22  # MAP_PRIVATE: file unchanged


def test_unmapped_access_raises():
    rig = Rig()
    with pytest.raises(SimulationError, match="SIGSEGV"):
        rig.run_accesses([(0, False, None)])


def test_uffd_delegation():
    rig = Rig(uffd=True)
    rig.space.mmap_anonymous(0, 256)
    handled = []

    def handler(page):
        handled.append(page)
        yield rig.env.timeout(10)
        return 1000 + page

    rig.uffd.register(0, 128, handler)
    (record,) = rig.run_accesses([(50, False, None)])
    assert record.kind is FaultKind.UFFD
    assert handled == [50]
    assert rig.space.pte[50] == 1050
    expected = (
        PARAMS.uffd_wakeup_us
        + 10
        + PARAMS.uffd_copy_us
        + PARAMS.uffd_resume_stall_us
        + PARAMS.vcpu_block_overhead_us
    )
    assert record.duration_us == pytest.approx(expected)
    assert rig.uffd.delegated_faults == 1


def test_uffd_outside_registration_falls_through():
    rig = Rig(uffd=True)
    rig.space.mmap_anonymous(0, 256)

    def handler(page):
        yield rig.env.timeout(1)
        return 0

    rig.uffd.register(0, 10, handler)
    (record,) = rig.run_accesses([(100, False, None)])
    assert record.kind is FaultKind.ANON


def test_uffd_overlapping_registration_rejected():
    rig = Rig(uffd=True)

    def handler(page):
        yield rig.env.timeout(1)
        return 0

    rig.uffd.register(0, 10, handler)
    with pytest.raises(SimulationError):
        rig.uffd.register(5, 10, handler)


def test_fault_stats_aggregation():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    rig.run_accesses([(i, False, None) for i in range(10)])
    stats = rig.handler.stats
    assert stats.count() == 10
    assert stats.count(FaultKind.ANON) == 10
    assert stats.total_time_us() == pytest.approx(10 * PARAMS.anon_fault_us)
    assert stats.total_block_requests() == 0


def test_fault_jitter_disabled_by_default():
    rig = Rig()
    rig.space.mmap_anonymous(0, 256)
    records = rig.run_accesses([(i, False, None) for i in range(20)])
    assert all(
        r.duration_us == pytest.approx(PARAMS.anon_fault_us) for r in records
    )


def test_fault_jitter_spreads_costs_deterministically():
    params = HostParams(fault_jitter_fraction=0.5)

    def run_once():
        rig = Rig(params=params)
        rig.space.mmap_anonymous(0, 256)
        records = rig.run_accesses([(i, False, None) for i in range(64)])
        return [r.duration_us for r in records]

    first = run_once()
    second = run_once()
    assert first == second  # deterministic
    assert len(set(first)) > 10  # actually spread
    for duration in first:
        assert (
            PARAMS.anon_fault_us * 0.5
            <= duration
            <= PARAMS.anon_fault_us * 1.5
        )


def test_readahead_window_trims_at_resident_page():
    params = HostParams(readahead_pages=8)
    rig = Rig(params=params)
    f = rig.store.create("mem", 64, pages={i: 1 for i in range(64)})
    rig.cache.insert("mem", 4)
    policy = ReadaheadPolicy(params)
    window = policy.window(f, rig.cache, 0)
    assert window == [0, 1, 2, 3]


def test_readahead_window_clips_at_eof():
    params = HostParams(readahead_pages=8)
    rig = Rig(params=params)
    f = rig.store.create("mem", 10, pages={i: 1 for i in range(10)})
    policy = ReadaheadPolicy(params)
    assert policy.window(f, rig.cache, 7) == [7, 8, 9]


def test_readahead_window_includes_faulting_page_even_if_pending():
    params = HostParams(readahead_pages=4)
    rig = Rig(params=params)
    f = rig.store.create("mem", 16, pages={i: 1 for i in range(16)})
    rig.cache.begin_pending("mem", 1)
    policy = ReadaheadPolicy(params)
    assert policy.window(f, rig.cache, 0) == [0]
