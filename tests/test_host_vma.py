"""Unit tests for address-space / VMA semantics."""

import pytest

from repro.host import ANONYMOUS, AddressSpace, FileBacking
from repro.sim import Environment, SimulationError
from repro.storage import BlockDevice, DeviceSpec, FileStore


@pytest.fixture
def store():
    env = Environment()
    device = BlockDevice(
        env, DeviceSpec("d", 100.0, 10.0, 1000.0, 1e6, queue_depth=4)
    )
    return FileStore(env, device)


def test_requires_positive_size():
    with pytest.raises(SimulationError):
        AddressSpace(0)


def test_empty_space_has_one_gap():
    space = AddressSpace(100)
    assert space.resolve(0) is None
    assert space.coverage_gaps() == [(0, 100)]


def test_anonymous_mapping_resolves(store):
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)
    vma = space.resolve(50)
    assert vma is not None
    assert vma.backing is ANONYMOUS
    assert space.coverage_gaps() == []
    assert space.mmap_calls == 1


def test_file_mapping_offsets(store):
    f = store.create("mem", 50)
    space = AddressSpace(100)
    space.mmap_file(10, 20, f, 5)
    vma = space.resolve(15)
    assert isinstance(vma.backing, FileBacking)
    assert vma.file_page(15) == 10  # 5 + (15 - 10)
    assert vma.file_page(10) == 5
    assert vma.file_page(29) == 24


def test_file_mapping_beyond_eof_rejected(store):
    f = store.create("mem", 10)
    space = AddressSpace(100)
    with pytest.raises(SimulationError):
        space.mmap_file(0, 20, f, 0)


def test_mapping_outside_space_rejected(store):
    space = AddressSpace(10)
    with pytest.raises(SimulationError):
        space.mmap_anonymous(5, 10)


def test_map_fixed_overlay_splits_underlying(store):
    f = store.create("mem", 100)
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)
    space.mmap_file(30, 10, f, 30)
    assert space.vma_count == 3
    assert space.resolve(29).backing is ANONYMOUS
    assert isinstance(space.resolve(35).backing, FileBacking)
    assert space.resolve(40).backing is ANONYMOUS
    assert space.coverage_gaps() == []


def test_faasnap_three_layer_hierarchy(store):
    """The exact layering of paper Figure 4: anonymous base, memory
    file for non-zero regions, loading-set file on top."""
    mem = store.create("mem", 100)
    loading = store.create("loading", 20)
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)  # layer 1
    space.mmap_file(10, 40, mem, 10)  # layer 2: non-zero region
    space.mmap_file(60, 20, mem, 60)  # layer 2: non-zero region
    space.mmap_file(20, 10, loading, 0)  # layer 3: loading set
    # 0-9 anon, 10-19 mem, 20-29 loading, 30-49 mem, 50-59 anon,
    # 60-79 mem, 80-99 anon
    assert space.resolve(5).backing is ANONYMOUS
    assert space.resolve(12).backing.file is mem
    assert space.resolve(25).backing.file is loading
    assert space.resolve(25).file_page(25) == 5
    assert space.resolve(35).backing.file is mem
    assert space.resolve(35).file_page(35) == 35
    assert space.resolve(55).backing is ANONYMOUS
    assert space.resolve(65).backing.file is mem
    assert space.resolve(85).backing is ANONYMOUS
    assert space.coverage_gaps() == []


def test_overlay_clears_pte_and_contents(store):
    space = AddressSpace(10)
    space.mmap_anonymous(0, 10)
    space.install_pte(3, 7)
    space.ept.add(3)
    space.write_anon(4, 9)
    space.mmap_anonymous(2, 5)
    assert not space.is_installed(3)
    assert 3 not in space.ept
    assert 4 not in space.anon_contents


def test_munmap_creates_gap(store):
    space = AddressSpace(10)
    space.mmap_anonymous(0, 10)
    space.munmap(4, 2)
    assert space.resolve(4) is None
    assert space.coverage_gaps() == [(4, 2)]


def test_backing_value_priority(store):
    f = store.create("mem", 10, pages={2: 42})
    space = AddressSpace(10)
    space.mmap_file(0, 10, f, 0)
    assert space.backing_value(2) == 42
    assert space.backing_value(3) == 0
    space.write_anon(2, 99)  # private dirty copy wins
    assert space.backing_value(2) == 99


def test_backing_value_unmapped_raises(store):
    space = AddressSpace(10)
    with pytest.raises(SimulationError):
        space.backing_value(5)


def test_rss_counts_installed_ptes(store):
    space = AddressSpace(10)
    space.mmap_anonymous(0, 10)
    assert space.rss_pages() == 0
    space.install_pte(0, 1)
    space.install_pte(5, 2)
    assert space.rss_pages() == 2


def test_resolve_out_of_range_raises(store):
    space = AddressSpace(10)
    with pytest.raises(SimulationError):
        space.resolve(10)


def test_vmas_sorted_by_address(store):
    space = AddressSpace(100)
    space.mmap_anonymous(50, 10)
    space.mmap_anonymous(0, 10)
    space.mmap_anonymous(20, 10)
    starts = [v.start for v in space.vmas()]
    assert starts == [0, 20, 50]


def test_adjacent_mappings_no_gap(store):
    space = AddressSpace(30)
    space.mmap_anonymous(0, 10)
    space.mmap_anonymous(10, 10)
    space.mmap_anonymous(20, 10)
    assert space.coverage_gaps() == []
    assert space.vma_count == 3
