"""Property-based tests: page cache, loader coalescing, working sets,
histograms, and the simulation clock."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loader import coalesce_ordered_pages
from repro.core.working_set import ReapWorkingSet, WorkingSetGroups
from repro.host import PageCache
from repro.metrics.stats import Histogram, fault_time_histogram
from repro.sim import Environment


# -- page cache LRU -----------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.booleans()),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=10),
)
def test_page_cache_never_exceeds_capacity(ops, capacity):
    cache = PageCache(Environment(), capacity_pages=capacity)
    for page, touch in ops:
        if touch:
            cache.contains("f", page)
        else:
            cache.insert("f", page)
        assert len(cache) <= capacity
    assert cache.insertions - cache.evictions == len(cache)


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
def test_page_cache_insert_is_idempotent_in_contents(pages):
    cache = PageCache(Environment())
    for page in pages:
        cache.insert("f", page)
    assert set(cache.pages_for_file("f")) == set(pages)
    assert cache.count_for_file("f") == len(set(pages))


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
def test_insertion_log_superset_of_resident(pages):
    cache = PageCache(Environment())
    for page in pages:
        cache.insert("f", page)
    log = cache.insertion_log("f")
    assert set(cache.pages_for_file("f")) <= set(log)
    # First occurrences appear in insertion order.
    firsts = []
    seen = set()
    for page in pages:
        if page not in seen:
            seen.add(page)
            firsts.append(page)
    assert log == firsts


# -- loader coalescing -------------------------------------------------


@given(
    st.lists(st.integers(0, 2000), min_size=1, max_size=300),
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=1, max_value=128),
)
def test_coalesced_units_cover_every_page(pages, gap, chunk):
    units = coalesce_ordered_pages(pages, coalesce_gap=gap, chunk_pages=chunk)
    covered = set()
    for start, npages in units:
        assert 1 <= npages
        covered.update(range(start, start + npages))
    assert set(pages) <= covered


@given(st.lists(st.integers(0, 2000), min_size=1, max_size=300))
def test_coalescing_with_zero_gap_reads_only_requested_pages(pages):
    units = coalesce_ordered_pages(pages, coalesce_gap=0, chunk_pages=10**9)
    covered = set()
    for start, npages in units:
        covered.update(range(start, start + npages))
    assert covered == set(pages)


# -- working sets -----------------------------------------------------------


@given(
    st.lists(
        st.lists(st.integers(0, 500), max_size=60), max_size=8
    ),
    st.integers(min_value=1, max_value=64),
)
def test_working_set_groups_are_contiguous_and_bounded(batches, group_pages):
    ws = WorkingSetGroups.from_batches(batches, group_pages=group_pages)
    all_pages = {p for batch in batches for p in batch}
    assert set(ws.group_of) == all_pages
    if ws.group_of:
        groups = sorted(set(ws.group_of.values()))
        assert groups == list(range(1, len(groups) + 1))
        for group in groups:
            assert 1 <= len(ws.pages_of_group(group)) <= group_pages


@given(st.lists(st.integers(0, 100), max_size=300))
def test_reap_ws_preserves_first_occurrence_order(pages):
    ws = ReapWorkingSet.from_fault_pages(pages)
    assert len(ws.pages_in_fault_order) == len(set(pages))
    seen = set()
    expected = []
    for page in pages:
        if page not in seen:
            seen.add(page)
            expected.append(page)
    assert ws.pages_in_fault_order == expected


# -- histograms -------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.01, max_value=10_000), max_size=500))
def test_histogram_counts_every_value_once(values):
    histogram = fault_time_histogram(values)
    assert histogram.total == len(values)


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=500)
)
def test_histogram_bucket_membership(values):
    histogram = Histogram(edges=[0.0, 10.0, 50.0])
    histogram.add_all(values)
    low = sum(1 for v in values if v < 10)
    mid = sum(1 for v in values if 10 <= v < 50)
    high = sum(1 for v in values if v >= 50)
    assert histogram.counts == [low, mid, high]


# -- simulation clock ----------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=30))
def test_clock_is_monotonic_over_arbitrary_timeouts(delays):
    env = Environment()
    observed = []

    def proc():
        for delay in delays:
            yield env.timeout(delay)
            observed.append(env.now)

    env.process(proc())
    env.run()
    assert observed == sorted(observed)
    if delays:
        assert observed[-1] == sum(delays)
