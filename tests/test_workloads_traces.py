"""Behavioural tests for workload trace generation."""

import pytest

from repro.vm.layout import GuestLayout
from repro.workloads import (
    build_layout,
    clean_snapshot_contents,
    generate_trace,
    generate_trace_pair,
    get_profile,
)
from repro.workloads.base import (
    INPUT_A,
    InputSpec,
    WorkloadProfile,
    content_token,
    runtime_resident_offsets,
)


SMALL = WorkloadProfile(
    name="small-test",
    description="tiny profile for fast unit tests",
    core_pages=100,
    var_base_pages=50,
    var_pool_pages=200,
    data_pages=80,
    data_read_pages=60,
    anon_base_pages=40,
    anon_free_fraction=0.75,
    compute_base_us=10_000.0,
    spread_factor=4.0,
    input_b_ratio=1.5,
    total_pages=8_192,
    boot_pages=512,
)


def test_trace_is_deterministic():
    t1 = generate_trace(SMALL, INPUT_A)
    t2 = generate_trace(SMALL, INPUT_A)
    assert [a.page for a in t1.accesses] == [a.page for a in t2.accesses]
    assert t1.freed_pages == t2.freed_pages


def test_same_size_different_content_touches_different_pages():
    """The image-diff scenario: same input size, different content."""
    t1 = generate_trace(SMALL, InputSpec(content_id=1))
    t2 = generate_trace(SMALL, InputSpec(content_id=2))
    only_1 = t1.touched_pages - t2.touched_pages
    only_2 = t2.touched_pages - t1.touched_pages
    assert only_1 and only_2
    # But the core pages are shared.
    layout = build_layout(SMALL)
    shared = t1.touched_pages & t2.touched_pages
    assert len(shared) >= SMALL.core_pages


def test_same_content_touches_same_pages():
    t1 = generate_trace(SMALL, InputSpec(content_id=7))
    t2 = generate_trace(SMALL, InputSpec(content_id=7))
    assert t1.touched_pages == t2.touched_pages


def test_larger_ratio_touches_more_pages():
    small = generate_trace(SMALL, InputSpec(content_id=1, size_ratio=0.5))
    base = generate_trace(SMALL, InputSpec(content_id=1, size_ratio=1.0))
    large = generate_trace(SMALL, InputSpec(content_id=1, size_ratio=3.0))
    assert small.working_set_pages < base.working_set_pages
    assert base.working_set_pages < large.working_set_pages


def test_larger_ratio_computes_longer():
    base = generate_trace(SMALL, InputSpec(content_id=1, size_ratio=1.0))
    large = generate_trace(SMALL, InputSpec(content_id=1, size_ratio=4.0))
    assert large.total_think_us > base.total_think_us


def test_total_think_time_matches_profile():
    trace = generate_trace(SMALL, INPUT_A)
    assert trace.total_think_us == pytest.approx(
        SMALL.compute_base_us, rel=0.01
    )


def test_data_pages_read_sequentially():
    layout = build_layout(SMALL)
    trace = generate_trace(SMALL, INPUT_A)
    data_pages = [
        a.page
        for a in trace.accesses
        if layout.region_of(a.page) == "data"
    ]
    assert len(data_pages) == SMALL.data_read_pages
    assert data_pages == sorted(data_pages)


def test_anon_pages_are_writes_with_nonzero_tokens():
    layout = build_layout(SMALL)
    writes = [
        a
        for a in generate_trace(SMALL, INPUT_A).accesses
        if layout.region_of(a.page) == "heap"
    ]
    assert writes
    for access in writes:
        assert access.write
        assert access.value == content_token(access.page, INPUT_A.content_id)
        assert access.value != 0


def test_freed_pages_are_heap_suffix():
    trace = generate_trace(SMALL, INPUT_A)
    n_alloc = SMALL.anon_pages_at(1.0)
    expected_freed = round(n_alloc * SMALL.anon_free_fraction)
    assert len(trace.freed_pages) == expected_freed
    layout = build_layout(SMALL)
    for page in trace.freed_pages:
        assert layout.region_of(page) == "heap"


def test_test_phase_reuses_freed_heap_pages():
    pair = generate_trace_pair(SMALL, INPUT_A, InputSpec(content_id=2))
    layout = build_layout(SMALL)
    test_heap = {
        a.page
        for a in pair.test.accesses
        if layout.region_of(a.page) == "heap"
    }
    # All freed record pages are reused before any fresh page.
    assert set(pair.record.freed_pages) <= test_heap


def test_larger_test_input_bumps_past_record_heap():
    pair = generate_trace_pair(
        SMALL, INPUT_A, InputSpec(content_id=2, size_ratio=4.0)
    )
    assert pair.test.heap_bump > pair.record.heap_bump


def test_heap_allocation_capped_at_heap_size():
    trace = generate_trace(
        SMALL, InputSpec(content_id=1, size_ratio=1_000_000.0)
    )
    layout = build_layout(SMALL)
    heap_pages = {
        a.page
        for a in trace.accesses
        if layout.region_of(a.page) == "heap"
    }
    assert len(heap_pages) <= layout.heap_pages


def test_core_pages_scattered_over_span():
    offsets = runtime_resident_offsets(SMALL)
    span = SMALL.runtime_span_pages
    assert span >= 4 * len(offsets) * 0.9
    assert max(offsets) < span
    assert len(set(offsets)) == len(offsets)
    # Pages spread across the span, not bunched at the front.
    assert max(offsets) > span * 0.9


def test_clean_snapshot_contents_cover_boot_runtime_data():
    layout = build_layout(SMALL)
    contents = clean_snapshot_contents(SMALL)
    expected = (
        SMALL.boot_pages
        + len(runtime_resident_offsets(SMALL))
        + SMALL.data_pages
    )
    assert len(contents) == expected
    assert all(value != 0 for value in contents.values())
    regions = {layout.region_of(page) for page in contents}
    assert regions == {"boot", "runtime", "data"}


def test_invalid_profiles_rejected():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad",
            description="",
            core_pages=0,
            var_base_pages=0,
            var_pool_pages=0,
        )
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad",
            description="",
            core_pages=10,
            var_base_pages=20,
            var_pool_pages=10,
        )
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad",
            description="",
            core_pages=10,
            var_base_pages=0,
            var_pool_pages=0,
            data_pages=5,
            data_read_pages=10,
        )


def test_invalid_input_spec_rejected():
    with pytest.raises(ValueError):
        InputSpec(content_id=1, size_ratio=0.0)


def test_input_b_spec():
    b = SMALL.input_b()
    assert b.content_id != INPUT_A.content_id
    assert b.size_ratio == SMALL.input_b_ratio
