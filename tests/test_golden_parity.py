"""Golden-parity tests for the performance machinery.

The fault fast path (``PlatformConfig.batch_faults``) and the parallel
experiment runner (``jobs=N``) are pure wall-clock optimisations: they
must not change a single simulated number. These tests compare full
invocation results — every scalar field and every fault record, down
to float bit-identity — between the optimised and reference paths.
"""

from repro.core.policies import MAIN_POLICIES, Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import fresh_platform, measure
from repro.experiments.runner import CellSpec, measure_cells
from repro.workloads.base import INPUT_A, InputSpec


def canonical(result):
    """An invocation result as a plain comparable value."""
    return (
        result.policy,
        result.function,
        result.input,
        result.setup_us,
        result.invoke_us,
        result.fetch_time_us,
        result.fetch_bytes,
        result.uffd_faults,
        result.rss_pages,
        result.cache_pages,
        result.private_buffer_pages,
        tuple(
            (
                r.kind,
                r.page,
                r.start_us,
                r.duration_us,
                r.block_requests,
                r.bytes_read,
            )
            for r in result.fault_records
        ),
    )


#: Figure 1 / Figure 8 style cells: every restore policy, same-input
#: and larger-input test phases (the latter drives REAP's userfaultfd
#: path and FaaSnap's sanitised record phase hard).
POLICIES = list(MAIN_POLICIES) + [Policy.WARM]
RATIOS = (1.0, 4.0)


def _run_grid(batch_faults):
    config = PlatformConfig(batch_faults=batch_faults)
    platform, handles = fresh_platform(config, False, ("json",))
    out = []
    for ratio in RATIOS:
        spec = InputSpec(content_id=9, size_ratio=ratio)
        for policy in POLICIES:
            cell = measure(platform, handles["json"], policy, spec, INPUT_A)
            out.append(canonical(cell.result))
    return out


def test_batching_is_bit_identical_to_event_path():
    assert _run_grid(batch_faults=True) == _run_grid(batch_faults=False)


def test_parallel_runner_is_bit_identical_to_serial():
    specs = [
        CellSpec("json", policy, InputSpec(content_id=9, size_ratio=ratio))
        for ratio in (0.5, 2.0)
        for policy in MAIN_POLICIES
    ]
    serial = measure_cells(specs, jobs=1)
    parallel = measure_cells(specs, jobs=2)
    assert [canonical(c.result) for c in serial] == [
        canonical(c.result) for c in parallel
    ]
    # Cells come back in spec order regardless of shard layout.
    assert [(c.function, c.policy, c.test_input) for c in parallel] == [
        (s.function, s.policy, s.test_input) for s in specs
    ]
