"""Tests for snapshot storage management (paper §7.2)."""

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.core.storage_manager import (
    SnapshotBundle,
    SnapshotStorageManager,
    bundle_from_artifacts,
)
from repro.workloads.base import INPUT_A, WorkloadProfile

MB = 1_000_000


def bundle(function, total_mb, used_us=0.0):
    return SnapshotBundle(
        function=function,
        memory_bytes=int(total_mb * MB * 0.8),
        artifact_bytes=int(total_mb * MB * 0.2),
        created_us=0.0,
        last_used_us=used_us,
    )


def test_quota_validation():
    with pytest.raises(ValueError):
        SnapshotStorageManager(quota_bytes=0)


def test_admit_and_lookup():
    manager = SnapshotStorageManager(quota_bytes=100 * MB)
    assert manager.admit(bundle("a", 30))
    assert manager.has_snapshot("a")
    assert manager.stored_bytes == 30 * MB
    assert manager.stored_functions == ["a"]
    assert manager.stats.admitted == 1


def test_oversized_bundle_rejected():
    manager = SnapshotStorageManager(quota_bytes=10 * MB)
    assert not manager.admit(bundle("huge", 50))
    assert not manager.has_snapshot("huge")


def test_lru_eviction_on_pressure():
    manager = SnapshotStorageManager(quota_bytes=100 * MB)
    manager.admit(bundle("old", 40, used_us=0.0))
    manager.admit(bundle("newer", 40, used_us=100.0))
    manager.touch("old", now_us=200.0)  # old becomes most recent
    manager.admit(bundle("incoming", 40, used_us=300.0))
    # 'newer' (LRU) was evicted; 'old' survived because it was touched.
    assert manager.has_snapshot("old")
    assert not manager.has_snapshot("newer")
    assert manager.has_snapshot("incoming")
    assert manager.stats.evictions == 1
    assert manager.stats.evicted_bytes == 40 * MB


def test_readmit_replaces_existing():
    manager = SnapshotStorageManager(quota_bytes=100 * MB)
    manager.admit(bundle("a", 30))
    manager.admit(bundle("a", 50))
    assert manager.stored_bytes == 50 * MB
    assert manager.stats.admitted == 1  # replacement, not a new admit


def test_infrequent_functions_not_snapshotted():
    manager = SnapshotStorageManager(
        quota_bytes=100 * MB, min_invocations_per_hour=1.0
    )
    assert not manager.admit(bundle("rare", 10), invocations_per_hour=0.2)
    assert manager.stats.rejected_infrequent == 1
    assert manager.admit(bundle("hot", 10), invocations_per_hour=60.0)
    assert manager.should_snapshot(2.0)
    assert not manager.should_snapshot(0.5)


def test_touch_and_evict_unknown_raise():
    manager = SnapshotStorageManager(quota_bytes=MB)
    with pytest.raises(KeyError):
        manager.touch("ghost", 0.0)
    with pytest.raises(KeyError):
        manager.evict("ghost")


def test_bundle_from_real_artifacts():
    profile = WorkloadProfile(
        name="tiny-storage",
        description="minimal",
        core_pages=200,
        var_base_pages=50,
        var_pool_pages=200,
        anon_base_pages=100,
        compute_base_us=5_000.0,
        total_pages=16_384,
        boot_pages=1_024,
    )
    platform = FaaSnapPlatform()
    handle = platform.register_function(profile)
    faasnap = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    measured = bundle_from_artifacts(faasnap, now_us=platform.env.now)
    assert measured.function == "tiny-storage"
    # Sparse memory footprint: non-zero pages only, which is far less
    # than the 64 MB of guest memory but at least the boot region.
    assert 1_024 * 4096 <= measured.memory_bytes < 16_384 * 4096
    assert measured.artifact_bytes > 0

    reap = platform.ensure_record(handle, INPUT_A, Policy.REAP)
    reap_bundle = bundle_from_artifacts(reap, now_us=platform.env.now)
    assert reap_bundle.artifact_bytes > 0
