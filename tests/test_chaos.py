"""Tests for the chaos scenarios, the drill report, and the CLI."""

import json

import pytest

from repro.cli import main
from repro.faults import DISABLED_RECOVERY, FaultPlan
from repro.faults.chaos import (
    SCENARIO_NAMES,
    SCENARIOS,
    run_chaos,
    scenario_fleet,
    scenario_trace,
)

DURATION_US = 15_000_000.0


# -- scenario builders -------------------------------------------------


def test_scenario_registry_is_complete():
    assert set(SCENARIO_NAMES) == {
        "host-crash-storm",
        "slow-device-brownout",
        "corrupted-snapshot-epidemic",
        "ebs-latency-spike",
        "bitrot-storm",
    }
    for name, spec in SCENARIOS.items():
        assert spec.name == name
        assert spec.description


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_plans_are_deterministic_per_seed(name):
    spec = SCENARIOS[name]
    first = spec.build_plan(4, 7, DURATION_US)
    again = spec.build_plan(4, 7, DURATION_US)
    other_seed = spec.build_plan(4, 8, DURATION_US)
    assert not first.is_empty
    assert first == again
    # A different seed draws a different schedule (times differ even
    # when the fault set happens to coincide).
    assert first.as_dict() != other_seed.as_dict()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_plans_round_trip_through_json(name):
    plan = SCENARIOS[name].build_plan(6, 3, DURATION_US)
    doc = json.loads(json.dumps(plan.as_dict()))
    assert FaultPlan.from_dict(doc) == plan


def test_scenario_trace_and_fleet_shapes():
    trace = scenario_trace(10, 250_000.0)
    assert len(trace) == 10
    assert trace.arrivals[0].function == "f0"
    assert trace.arrivals[1].function == "f1"
    fleet = scenario_fleet()
    assert [f.name for f in fleet] == ["f0", "f1"]


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        run_chaos("meteor-strike")


# -- drills ------------------------------------------------------------


def test_chaos_report_is_deterministic():
    """The acceptance criterion: same seed + plan => byte-identical
    report JSON."""
    first = run_chaos("host-crash-storm", seed=2, arrivals=16)
    again = run_chaos("host-crash-storm", seed=2, arrivals=16)
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        again.as_dict(), sort_keys=True
    )


def test_storm_recovery_keeps_availability_above_99_percent():
    """The acceptance criterion: the self-healing control plane rides
    out the host-crash storm at >= 99% availability, while the same
    storm with recovery disabled measurably fails arrivals."""
    protected = run_chaos("host-crash-storm", seed=1, arrivals=60)
    assert protected.recovery_enabled
    assert protected.availability >= 0.99
    assert protected.fault_summary["host_crashes"] >= 1
    assert protected.outcome_counts["retried"] >= 1

    unprotected = run_chaos(
        "host-crash-storm", seed=1, arrivals=60, recovery=DISABLED_RECOVERY
    )
    assert not unprotected.recovery_enabled
    assert unprotected.availability < protected.availability
    assert unprotected.outcome_counts["failed"] >= 1


def test_ebs_spike_raises_tail_latency_but_not_failures():
    report = run_chaos("ebs-latency-spike", seed=1, arrivals=16)
    assert report.availability == 1.0
    assert report.fault_summary["device_windows_opened"] == 1
    assert report.p999_us > report.baseline_p999_us


def test_report_render_mentions_the_drill():
    report = run_chaos("host-crash-storm", seed=1, arrivals=12)
    text = report.render()
    assert "host-crash-storm" in text
    assert "availability" in text
    assert "recovery on" in text


# -- CLI ---------------------------------------------------------------


def test_cli_chaos_single_scenario_with_report(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = main(
        [
            "chaos",
            "--scenario",
            "host-crash-storm",
            "--arrivals",
            "16",
            "--seed",
            "2",
            "--min-availability",
            "0.99",
            "--report-out",
            str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Chaos drill: host-crash-storm" in out
    doc = json.loads(out_path.read_text())
    assert doc["scenario"] == "host-crash-storm"
    assert doc["availability"] >= 0.99
    assert doc["recovery_enabled"] is True
    assert set(doc["outcome_counts"]) == {
        "ok", "retried", "hedge-won", "shed", "failed",
    }
    assert doc["plan"]["host_crashes"]


def test_cli_chaos_min_availability_gate_fails(capsys):
    code = main(
        [
            "chaos",
            "--scenario",
            "host-crash-storm",
            "--arrivals",
            "30",
            "--seed",
            "1",
            "--no-recovery",
            "--min-availability",
            "0.99",
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "below required" in err


def test_cli_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["chaos", "--scenario", "meteor-strike"])
