"""Smoke tests for the experiment modules.

The benchmarks run the experiments at paper scale and assert the
paper's claims; these tests only verify each module's plumbing —
run(), the result object, and format_table() — on minimal inputs so
`pytest tests/` covers every experiment code path quickly.
"""

import pytest

from repro.core.policies import Policy
from repro.experiments import (
    ALL_EXPERIMENTS,
    fig1_breakdown,
    fig6_execution,
    fig7_synthetic,
    fig8_sensitivity,
    fig10_bursty,
    fig11_remote,
    table2_workloads,
    table3_analysis,
)
from repro.experiments.common import Cell, Grid, fresh_platform, measure
from repro.workloads.base import INPUT_A


def test_all_experiments_registry():
    assert set(ALL_EXPERIMENTS) == {
        "fig1",
        "fig2",
        "table2",
        "fig6",
        "fig7",
        "fig8",
        "table3",
        "fig9",
        "fig10",
        "fig11",
    }
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run")
        assert hasattr(module, "format_table")


def test_grid_lookup_and_errors():
    platform, handles = fresh_platform(functions=("hello-world",))
    cell = measure(platform, handles["hello-world"], Policy.CACHED, INPUT_A)
    grid = Grid()
    grid.add(cell)
    assert grid.get("hello-world", Policy.CACHED) is cell
    with pytest.raises(KeyError):
        grid.get("hello-world", Policy.REAP)
    assert grid.totals_ms(Policy.CACHED)["hello-world"] == cell.total_ms
    assert cell.setup_ms + cell.invoke_ms == pytest.approx(cell.total_ms)


def test_table2_smoke():
    result = table2_workloads.run(functions=["hello-world", "json"])
    assert len(result.rows) == 2
    table = table2_workloads.format_table(result)
    assert "json" in table


def test_fig1_smoke():
    result = fig1_breakdown.run(functions=["hello-world"])
    table = fig1_breakdown.format_table(result)
    assert "hello-world" in table
    assert "warm" in table
    # No image in functions -> no image-diff row.
    assert "image-diff" not in table


def test_fig6_smoke():
    result = fig6_execution.run(functions=["json"])
    table = fig6_execution.format_table(result)
    assert "A->B" in table and "B->A" in table
    assert result.speedup("A->B", Policy.FIRECRACKER) > 0


def test_fig7_smoke():
    result = fig7_synthetic.run(functions=["hello-world"])
    assert "hello-world" in fig7_synthetic.format_table(result)


def test_fig8_smoke():
    result = fig8_sensitivity.run(functions=["json"], ratios=(0.5, 1.0))
    series = result.series("json", Policy.FAASNAP)
    assert len(series) == 2
    assert "json" in fig8_sensitivity.format_table(result)
    with pytest.raises(KeyError):
        result.grid.get("json", Policy.FAASNAP, size_ratio=99.0)


def test_table3_smoke():
    result = table3_analysis.run(functions=("image",))
    row = result.get(Policy.FAASNAP, "image")
    assert row.total_ms > 0
    with pytest.raises(KeyError):
        result.get(Policy.FAASNAP, "ffmpeg")
    assert "image" in table3_analysis.format_table(result)


def test_fig10_smoke():
    result = fig10_bursty.run(
        functions=("hello-world",), parallelisms=(1, 2)
    )
    point = result.points[("hello-world", "same", Policy.FAASNAP, 2)]
    assert point.mean_ms > 0
    assert point.max_ms >= point.mean_ms
    assert "hello-world" in fig10_bursty.format_table(result)


def test_fig11_smoke():
    result = fig11_remote.run(functions=["hello-world"])
    assert result.speedup_over(Policy.FIRECRACKER) > 1.0
    assert "hello-world" in fig11_remote.format_table(result)
