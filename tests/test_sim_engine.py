"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    timestamps = []

    def proc():
        yield env.timeout(10)
        timestamps.append(env.now)
        yield env.timeout(5.5)
        timestamps.append(env.now)

    env.process(proc())
    env.run()
    assert timestamps == [10.0, 15.5]


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="tick")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["tick"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=35)
    assert env.now == 35.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 3.0


def test_events_fire_in_schedule_order_at_same_instant():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_another_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(7)
        log.append(("child", env.now))
        return 99

    def parent():
        value = yield env.process(child())
        log.append(("parent", env.now, value))

    env.process(parent())
    env.run()
    assert log == [("child", 7.0), ("parent", 7.0, 99)]


def test_waiting_on_already_finished_process():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1)
        return "early"

    def parent(child_proc):
        yield env.timeout(10)
        value = yield child_proc
        results.append((env.now, value))

    child_proc = env.process(child())
    env.process(parent(child_proc))
    env.run()
    assert results == [(10.0, "early")]


def test_manual_event_succeed():
    env = Environment()
    got = []

    def waiter(evt):
        value = yield evt
        got.append(value)

    evt = env.event()
    env.process(waiter(evt))

    def trigger():
        yield env.timeout(4)
        evt.succeed("payload")

    env.process(trigger())
    env.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_propagates_into_waiter():
    env = Environment()
    caught = []

    def waiter(evt):
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    evt = env.event()
    env.process(waiter(evt))
    evt.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_surfaces_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    env.process(bad())
    with pytest.raises(RuntimeError, match="kaboom"):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield env.process(bad())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["inner"]


def test_yielding_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(5)
        proc.interrupt("stop now")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", 5.0, "stop now")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_unhandled_interrupt_does_not_crash_run():
    env = Environment()

    def sleeper():
        yield env.timeout(1000)

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(5)
        proc.interrupt()

    env.process(interrupter())
    env.run()
    assert env.now >= 5.0


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def worker(delay, value):
        yield env.timeout(delay)
        return value

    def coordinator():
        procs = [env.process(worker(d, v)) for d, v in [(5, "a"), (2, "b"), (9, "c")]]
        values = yield env.all_of(procs)
        results.append((env.now, values))

    env.process(coordinator())
    env.run()
    assert results == [(9.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def coordinator():
        values = yield env.all_of([])
        results.append(values)

    env.process(coordinator())
    env.run()
    assert results == [[]]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def worker(delay, value):
        yield env.timeout(delay)
        return value

    def coordinator():
        procs = [env.process(worker(d, v)) for d, v in [(5, "slow"), (2, "fast")]]
        index, value = yield env.any_of(procs)
        results.append((env.now, index, value))

    env.process(coordinator())
    env.run(until=20)
    assert results == [(2.0, 1, "fast")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(12)
    assert env.peek() == 12.0


def test_peek_empty_queue_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_backwards_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(SimulationError):
        env.run(until=50)


def test_deterministic_repeated_runs():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(tag, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((tag, i, env.now))

        env.process(worker("x", 3))
        env.process(worker("y", 5))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


def test_timeout_is_event_subclass():
    env = Environment()
    assert isinstance(env.timeout(1), Timeout)
    assert isinstance(env.timeout(1), Event)


def test_process_return_value_via_event_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return {"answer": 42}

    p = env.process(proc())
    env.run()
    assert p.value == {"answer": 42}
    assert p.ok
    assert not p.is_alive
