"""Unit tests for the block-device model."""

import pytest

from repro.sim import Environment, SimulationError
from repro.storage import BlockDevice, DeviceSpec, EBS_IO2, NVME_LOCAL


def make_device(env, **overrides):
    params = dict(
        name="test-disk",
        random_latency_us=100.0,
        sequential_latency_us=10.0,
        bandwidth_bytes_per_us=1000.0,
        iops=1e6,
        queue_depth=4,
    )
    params.update(overrides)
    return BlockDevice(env, DeviceSpec(**params))


def run_reads(device, requests):
    """Run a sequence of (offset, nbytes) reads serially; return times."""
    env = device.env
    times = []

    def proc():
        for offset, nbytes in requests:
            elapsed = yield from device.read(offset, nbytes)
            times.append(elapsed)

    env.process(proc())
    env.run()
    return times


def test_spec_validation():
    with pytest.raises(ValueError):
        DeviceSpec("x", -1, 1, 1, 1)
    with pytest.raises(ValueError):
        DeviceSpec("x", 1, 1, 0, 1)
    with pytest.raises(ValueError):
        DeviceSpec("x", 1, 1, 1, 1, queue_depth=0)


def test_random_read_cost_is_latency_plus_transfer():
    env = Environment()
    device = make_device(env)
    (elapsed,) = run_reads(device, [(0, 4096)])
    assert elapsed == pytest.approx(100.0 + 4096 / 1000.0)


def test_sequential_read_is_cheaper():
    env = Environment()
    device = make_device(env)
    times = run_reads(device, [(0, 4096), (4096, 4096)])
    assert times[1] < times[0]
    assert times[1] == pytest.approx(10.0 + 4096 / 1000.0)


def test_non_contiguous_read_pays_random_latency_again():
    env = Environment()
    device = make_device(env)
    times = run_reads(device, [(0, 4096), (1 << 20, 4096)])
    assert times[1] == pytest.approx(times[0])


def test_iops_cap_floors_latency():
    env = Environment()
    device = make_device(env, iops=10_000.0, sequential_latency_us=1.0)
    # 10k IOPS -> 100 us per request, higher than the 1 us seq latency.
    times = run_reads(device, [(0, 4096), (4096, 4096)])
    assert times[1] == pytest.approx(100.0 + 4096 / 1000.0)


def test_stats_accumulate():
    env = Environment()
    device = make_device(env)
    run_reads(device, [(0, 4096), (4096, 8192), (1 << 20, 4096)])
    assert device.stats.requests == 3
    assert device.stats.sequential_requests == 1
    assert device.stats.random_requests == 2
    assert device.stats.bytes_read == 4096 + 8192 + 4096


def test_reset_stats():
    env = Environment()
    device = make_device(env)
    run_reads(device, [(0, 4096)])
    device.reset_stats()
    assert device.stats.requests == 0
    assert device.stats.bytes_read == 0


def test_bandwidth_channel_serialises_transfers():
    """Two concurrent large reads cannot exceed device bandwidth."""
    env = Environment()
    device = make_device(env, queue_depth=8)
    nbytes = 1_000_000  # 1000 us of transfer each at 1000 B/us
    done = []

    def reader(offset):
        yield from device.read(offset, nbytes)
        done.append(env.now)

    env.process(reader(0))
    env.process(reader(1 << 30))
    env.run()
    # Latencies overlap but the 2 MB of transfer must take >= 2000 us.
    assert max(done) >= 2000.0


def test_queue_depth_limits_concurrency():
    env = Environment()
    device = make_device(env, queue_depth=1)
    starts = []

    def reader(offset):
        yield from device.read(offset, 4096)
        starts.append(env.now)

    env.process(reader(0))
    env.process(reader(1 << 20))
    env.run()
    single = 100.0 + 4096 / 1000.0
    assert starts[1] == pytest.approx(2 * single)


def test_invalid_reads_rejected():
    env = Environment()
    device = make_device(env)

    def bad_size():
        yield from device.read(0, 0)

    env.process(bad_size())
    with pytest.raises(SimulationError):
        env.run()

    env2 = Environment()
    device2 = make_device(env2)

    def bad_offset():
        yield from device2.read(-4096, 4096)

    env2.process(bad_offset())
    with pytest.raises(SimulationError):
        env2.run()


def test_estimate_matches_uncontended_simulation():
    env = Environment()
    device = make_device(env)
    (elapsed,) = run_reads(device, [(0, 65536)])
    assert elapsed == pytest.approx(device.estimate_read_time(65536))


def test_nvme_preset_matches_paper_numbers():
    assert NVME_LOCAL.bandwidth_bytes_per_us == 1589.0
    assert NVME_LOCAL.iops == 285_000.0


def test_ebs_preset_is_slower_than_nvme():
    assert EBS_IO2.random_latency_us > NVME_LOCAL.random_latency_us
    assert EBS_IO2.bandwidth_bytes_per_us < NVME_LOCAL.bandwidth_bytes_per_us
    assert EBS_IO2.iops < NVME_LOCAL.iops


def test_scattered_4k_reads_much_slower_than_one_sequential_read():
    """The core premise of the loading-set file layout (paper 4.7)."""
    npages = 256
    env = Environment()
    device = make_device(env)
    scattered = run_reads(
        device, [(i * 10 * 4096, 4096) for i in range(npages)]
    )
    env2 = Environment()
    device2 = make_device(env2)
    (sequential,) = run_reads(device2, [(0, npages * 4096)])
    assert sum(scattered) > 5 * sequential
