"""Property-based tests over the workload trace generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.layout import GuestLayout
from repro.workloads.base import (
    InputSpec,
    WorkloadProfile,
    build_layout,
    clean_snapshot_contents,
    generate_trace,
    generate_trace_pair,
)


@st.composite
def profiles(draw):
    core = draw(st.integers(min_value=10, max_value=400))
    pool = draw(st.integers(min_value=0, max_value=600))
    var_base = draw(st.integers(min_value=0, max_value=pool))
    data = draw(st.integers(min_value=0, max_value=300))
    data_read = draw(st.integers(min_value=0, max_value=data))
    anon = draw(st.integers(min_value=0, max_value=300))
    free_frac = draw(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    )
    spread = draw(st.floats(min_value=1.5, max_value=8.0))
    return WorkloadProfile(
        name=f"prop-{core}-{pool}-{var_base}-{data}-{anon}",
        description="hypothesis-generated profile",
        core_pages=core,
        var_base_pages=var_base,
        var_pool_pages=pool,
        data_pages=data,
        data_read_pages=data_read,
        anon_base_pages=anon,
        anon_free_fraction=free_frac,
        compute_base_us=draw(
            st.floats(min_value=100.0, max_value=50_000.0)
        ),
        spread_factor=spread,
        total_pages=32_768,
        boot_pages=1_024,
    )


inputs = st.builds(
    InputSpec,
    content_id=st.integers(min_value=1, max_value=50),
    size_ratio=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
)


@given(profiles(), inputs)
@settings(max_examples=50, deadline=None)
def test_trace_pages_stay_inside_guest_memory(profile, spec):
    layout = build_layout(profile)
    trace = generate_trace(profile, spec)
    for access in trace.accesses:
        assert 0 <= access.page < layout.total_pages
        # Invocations never touch the boot region.
        assert layout.region_of(access.page) != "boot"


@given(profiles(), inputs)
@settings(max_examples=50, deadline=None)
def test_trace_think_time_is_nonnegative_and_totals_compute(profile, spec):
    trace = generate_trace(profile, spec)
    assert all(a.think_us >= 0 for a in trace.accesses)
    assert trace.tail_think_us >= 0
    expected = profile.compute_us_at(spec.size_ratio)
    assert abs(trace.total_think_us - expected) / expected < 0.02


@given(profiles(), inputs)
@settings(max_examples=50, deadline=None)
def test_writes_carry_values_and_reads_do_not(profile, spec):
    trace = generate_trace(profile, spec)
    for access in trace.accesses:
        if access.write:
            assert access.value is not None
        else:
            assert access.value is None


@given(profiles(), inputs)
@settings(max_examples=50, deadline=None)
def test_freed_pages_are_touched_heap_pages(profile, spec):
    layout = build_layout(profile)
    trace = generate_trace(profile, spec)
    touched = trace.touched_pages
    for page in trace.freed_pages:
        assert page in touched
        assert layout.region_of(page) == "heap"
    assert len(set(trace.freed_pages)) == len(trace.freed_pages)


@given(profiles(), inputs, inputs)
@settings(max_examples=40, deadline=None)
def test_pair_heap_continuity(profile, record_spec, test_spec):
    pair = generate_trace_pair(profile, record_spec, test_spec)
    layout = build_layout(profile)
    record_heap = {
        a.page
        for a in pair.record.accesses
        if layout.region_of(a.page) == "heap"
    }
    test_heap = {
        a.page
        for a in pair.test.accesses
        if layout.region_of(a.page) == "heap"
    }
    # Heap reuse: freed record pages come first; fresh pages start at
    # the record bump, never inside the untouched-but-kept record
    # range.
    kept = record_heap - set(pair.record.freed_pages)
    fresh_test = test_heap - set(pair.record.freed_pages)
    assert not (fresh_test & kept)
    assert pair.test.heap_bump >= pair.record.heap_bump


@given(profiles())
@settings(max_examples=40, deadline=None)
def test_clean_snapshot_within_guest_and_nonzero(profile):
    layout = build_layout(profile)
    contents = clean_snapshot_contents(profile)
    for page, value in contents.items():
        assert 0 <= page < layout.total_pages
        assert value != 0
        assert layout.region_of(page) != "heap"


@given(profiles(), st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_working_set_monotonic_in_ratio(profile, content):
    small = generate_trace(profile, InputSpec(content, size_ratio=0.5))
    large = generate_trace(profile, InputSpec(content, size_ratio=4.0))
    assert large.working_set_pages >= small.working_set_pages
