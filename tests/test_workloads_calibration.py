"""Calibration tests: workload traces match the paper's Table 2."""

import pytest

from repro.workloads import (
    BENCHMARK_FUNCTIONS,
    SYNTHETIC_FUNCTIONS,
    VARIABLE_INPUT_FUNCTIONS,
    get_profile,
    generate_trace,
    generate_trace_pair,
)
from repro.workloads.base import INPUT_A, InputSpec

#: Tolerance against Table 2 working-set sizes.
WS_TOLERANCE = 0.15


@pytest.mark.parametrize("name", BENCHMARK_FUNCTIONS)
def test_working_set_a_matches_table2(name):
    profile = get_profile(name)
    trace = generate_trace(profile, INPUT_A)
    assert trace.working_set_mb == pytest.approx(
        profile.ws_a_mb, rel=WS_TOLERANCE
    ), f"{name}: WS(A) {trace.working_set_mb:.1f} MB vs {profile.ws_a_mb} MB"


@pytest.mark.parametrize("name", BENCHMARK_FUNCTIONS)
def test_working_set_b_matches_table2(name):
    profile = get_profile(name)
    trace = generate_trace(profile, profile.input_b())
    assert trace.working_set_mb == pytest.approx(
        profile.ws_b_mb, rel=WS_TOLERANCE
    ), f"{name}: WS(B) {trace.working_set_mb:.1f} MB vs {profile.ws_b_mb} MB"


def test_registry_lists_cover_table2():
    assert len(BENCHMARK_FUNCTIONS) == 12
    assert set(SYNTHETIC_FUNCTIONS) | set(VARIABLE_INPUT_FUNCTIONS) == set(
        BENCHMARK_FUNCTIONS
    )


def test_unknown_profile_raises():
    with pytest.raises(KeyError, match="unknown function"):
        get_profile("nope")
