"""The snapshot durability plane: checksummed replicas, verified
restores, quarantine/repair/rebuild escalation, scrubbing, and the
FailSlow fault kind.

Pins the PR's acceptance criteria: corruption is detected at read
time (not via the injector side-channel), quarantined replicas are
never re-read, repair traffic spends from the shared retry budget,
the bitrot-storm drill detects 100% of corrupted restores while
holding availability, a disabled policy is bit-identical to no
policy, and the detection/repair event stream is byte-identical
across shard counts.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    ShardedClusterSimulator,
)
from repro.faults import (
    DISABLED_DURABILITY,
    DISABLED_RECOVERY,
    DurabilityManager,
    DurabilityPolicy,
    FailSlow,
    FaultPlan,
    HealthMonitor,
    HealthPolicy,
    RecoveryPolicy,
    RetryBudget,
    SnapshotCorruption,
)
from repro.faults.durability import (
    HEALTHY,
    QUARANTINED,
    VERIFY_CORRUPT,
    VERIFY_OK,
    VERIFY_SILENT,
    VERIFY_UNTRACKED,
)
from repro.fleet.scheduler import InvocationOutcome
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.sim import Environment

SECOND = 1_000_000.0

GOLDEN = (11, 22, 33, 44)


def fleet_of(*names):
    return [
        FleetFunction(
            name=name, profile_name="json", mean_interarrival_us=SECOND
        )
        for name in names
    ]


def trace_of(*arrivals):
    items = sorted(
        (Arrival(time_us=t, function=f) for t, f in arrivals),
        key=lambda a: (a.time_us, a.function),
    )
    return ArrivalTrace(
        arrivals=items, duration_us=max(a.time_us for a in items) + 1
    )


def spaced_trace(count, spacing_us=400_000.0, functions=("f0", "f1")):
    return trace_of(
        *(
            (i * spacing_us, functions[i % len(functions)])
            for i in range(count)
        )
    )


def make_manager(policy=None, budget=None, checksums=GOLDEN):
    env = Environment(seed=3)
    policy = policy or DurabilityPolicy(enabled=True, replicas=2)
    manager = DurabilityManager(
        env,
        policy,
        checksum_fn=lambda host, fn: checksums,
        budget_fn=(lambda: budget) if budget is not None else None,
    )
    return env, manager


# -- policy validation and serialisation -------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(replicas=0),
        dict(chunk_pages=0),
        dict(scrub_interval_us=0.0),
        dict(scrub_interval_us=-1.0),
        dict(repair_us_per_chunk=-1.0),
        dict(repair_retry_us=0.0),
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        DurabilityPolicy(**kwargs)


def test_policy_round_trips_through_json():
    policy = DurabilityPolicy(
        enabled=True, replicas=3, scrub_interval_us=5e5
    )
    doc = json.loads(json.dumps(policy.as_dict()))
    assert DurabilityPolicy.from_dict(doc) == policy
    assert DISABLED_DURABILITY == DurabilityPolicy()
    assert not DISABLED_DURABILITY.enabled


def test_fail_slow_validation_and_round_trip():
    with pytest.raises(ValueError):
        FailSlow(host="h", start_us=-1.0)
    with pytest.raises(ValueError):
        FailSlow(host="h", start_us=0.0, slowdown=1.0)
    with pytest.raises(ValueError):
        FailSlow(host="h", start_us=0.0, duration_us=0.0)
    plan = FaultPlan(
        fail_slows=[
            FailSlow(host="h0", start_us=5.0, slowdown=3.0),
            FailSlow(
                host="h1", start_us=0.0, slowdown=2.0, duration_us=9.0
            ),
        ]
    )
    assert len(plan) == 2 and not plan.is_empty
    doc = json.loads(json.dumps(plan.as_dict()))
    assert FaultPlan.from_dict(doc) == plan


# -- manager: verified restores and escalation -------------------------


def test_intact_replicas_verify_ok():
    env, manager = make_manager()
    assert manager.verify_restore("host0", "f0") == VERIFY_OK
    assert manager.has_readable("host0", "f0")
    assert manager.summary()["quarantines"] == 0


def test_untracked_function_verifies_untracked():
    env = Environment(seed=1)
    manager = DurabilityManager(
        env,
        DurabilityPolicy(enabled=True),
        checksum_fn=lambda host, fn: None,
    )
    assert manager.verify_restore("host0", "f0") == VERIFY_UNTRACKED
    # Without artefacts, the warm check stays permissive.
    assert manager.has_readable("host0", "f0")


def test_corruption_detected_at_read_time_and_fails_over():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    # Replica 0 took the hit; detection quarantines it.
    assert manager.verify_restore("host0", "f0") == VERIFY_CORRUPT
    rs = manager.ensure("host0", "f0")
    assert [r.state for r in rs.replicas] == [QUARANTINED, HEALTHY]
    # Failover: the next restore reads the healthy replica 1.
    assert manager.verify_restore("host0", "f0") == VERIFY_OK
    assert rs.pick().index == 1
    assert manager.has_readable("host0", "f0")
    assert manager.detected_restore == 1


def test_corruption_targeting_is_counter_driven():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    manager.mark_corrupt("host0", "f0")
    rs = manager.ensure("host0", "f0")
    # seq 0 hit replica 0 chunk 0, seq 1 hit replica 1 chunk 1 —
    # deterministic, no RNG involved.
    assert rs.replicas[0].stored[0] == GOLDEN[0] ^ 0x5A5A5A5A
    assert rs.replicas[1].stored[1] == GOLDEN[1] ^ 0x5A5A5A5A
    assert manager.corruptions_applied == 2


def test_pending_corruption_applies_on_first_touch():
    env = Environment(seed=1)
    box = {"golden": None}
    manager = DurabilityManager(
        env,
        DurabilityPolicy(enabled=True, replicas=2),
        checksum_fn=lambda host, fn: box["golden"],
    )
    manager.mark_corrupt("host0", "f0")  # artefacts don't exist yet
    assert manager.ensure("host0", "f0") is None
    box["golden"] = GOLDEN  # the snapshot gets recorded
    rs = manager.ensure("host0", "f0")
    assert not rs.replicas[0].intact
    assert manager.corruptions_applied == 1


def test_all_replicas_bad_routes_to_rebuild():
    env, manager = make_manager()
    for _ in range(2):
        manager.mark_corrupt("host0", "f0")
        manager.verify_restore("host0", "f0")
    rs = manager.ensure("host0", "f0")
    assert rs.rebuilding and not rs.readable
    # The warm check reports no readable replica: the caller must
    # fall back to a cold boot (rebuild-from-scratch).
    assert not manager.has_readable("host0", "f0")
    # The publish after the cold boot completes the rebuild.
    manager.publish("host0", "f0")
    assert rs.readable
    assert all(r.state == HEALTHY for r in rs.replicas)
    assert manager.rebuilds == 1


def test_publish_never_heals_a_quarantined_replica():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    manager.verify_restore("host0", "f0")
    rs = manager.ensure("host0", "f0")
    assert rs.replicas[0].state == QUARANTINED
    manager.publish("host0", "f0")  # partially readable: untouched
    assert rs.replicas[0].state == QUARANTINED
    assert manager.rebuilds == 0


def test_background_repair_restores_quarantined_replica():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    manager.verify_restore("host0", "f0")
    rs = manager.ensure("host0", "f0")
    env.run()
    assert rs.replicas[0].state == HEALTHY
    assert rs.replicas[0].intact
    assert manager.repairs == 1
    kinds = [e["kind"] for e in manager.events]
    assert kinds == ["quarantine", "repair"]


def test_repair_defers_until_budget_allows():
    budget = RetryBudget(min_budget=0.0, ratio=1.0)
    env, manager = make_manager(budget=budget)
    manager.mark_corrupt("host0", "f0")
    manager.verify_restore("host0", "f0")
    # No tokens: the repair loop parks, deferring each denial.
    env.run(until=1_200_000.0)
    assert manager.repairs == 0
    assert manager.repairs_deferred >= 2
    budget.on_arrival()  # earn one token
    env.run()
    assert manager.repairs == 1
    assert budget.spent == 1.0


def test_verification_off_serves_silently():
    env, manager = make_manager(
        policy=DurabilityPolicy(
            enabled=True, replicas=1, verify_restores=False
        )
    )
    manager.mark_corrupt("host0", "f0")
    assert manager.verify_restore("host0", "f0") == VERIFY_SILENT
    assert manager.silent_corrupt_serves == 1
    assert manager.quarantines == 0


def test_scrub_finds_rot_before_any_restore():
    env, manager = make_manager()
    manager.ensure("host0", "f0")
    manager.ensure("host0", "f1")
    manager.mark_corrupt("host0", "f1")
    result = manager.scrub_now()
    assert result == {"hosts": 1, "checked": 4, "found": 1}
    assert manager.detected_scrub == 1
    assert manager.detected_restore == 0
    env.run()
    assert manager.repairs == 1


def test_stop_interrupts_repairs_and_leaves_quarantine():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    manager.verify_restore("host0", "f0")
    manager.stop()
    env.run()
    rs = manager.ensure("host0", "f0")
    assert rs.replicas[0].state == QUARANTINED
    assert manager.repairs == 0


def test_status_document_is_json_ready():
    env, manager = make_manager()
    manager.mark_corrupt("host0", "f0")
    manager.verify_restore("host0", "f0")
    doc = json.loads(json.dumps(manager.status(), sort_keys=True))
    assert doc["policy"]["enabled"] is True
    assert doc["counters"]["quarantines"] == 1
    (entry,) = doc["replica_sets"]
    assert entry["replicas"] == [QUARANTINED, HEALTHY]
    assert entry["readable"] is True


# -- fail-slow detection -----------------------------------------------


class _FakeHost:
    def __init__(self, host_id):
        self.host_id = host_id
        self.crashed = False


class _FakeState:
    def __init__(self, host_id):
        self.host = _FakeHost(host_id)
        self.healthy = True
        self.error_times = []
        self.last_bad_us = 0.0


FAIL_SLOW_POLICY = HealthPolicy(
    enabled=True,
    check_interval_us=100.0,
    fail_slow_factor=3.0,
    fail_slow_min_samples=4,
    fail_slow_window=8,
)


def test_fail_slow_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(fail_slow_factor=1.0)
    with pytest.raises(ValueError):
        HealthPolicy(fail_slow_factor=2.0, fail_slow_min_samples=1)
    with pytest.raises(ValueError):
        HealthPolicy(
            fail_slow_factor=2.0,
            fail_slow_min_samples=8,
            fail_slow_window=4,
        )


def test_fail_slow_outlier_drains_host():
    env = Environment(seed=1)
    state = _FakeState("h0")
    monitor = HealthMonitor(env, FAIL_SLOW_POLICY, [state])
    for _ in range(4):  # freeze the baseline at median 100
        monitor.note_restore_latency(state, 100.0)
    assert state.healthy
    for _ in range(4):  # 10x the baseline: a fail-slow device
        monitor.note_restore_latency(state, 1_000.0)
    assert not state.healthy
    assert monitor.fail_slow_drains == 1
    assert monitor.summary()["fail_slow_drains"] == 1


def test_fail_slow_tolerates_healthy_jitter():
    env = Environment(seed=1)
    state = _FakeState("h0")
    monitor = HealthMonitor(env, FAIL_SLOW_POLICY, [state])
    for latency in (100.0, 120.0, 90.0, 110.0, 130.0, 95.0, 105.0):
        monitor.note_restore_latency(state, latency)
    assert state.healthy
    assert monitor.fail_slow_drains == 0


def test_fail_slow_detection_off_by_default():
    env = Environment(seed=1)
    state = _FakeState("h0")
    monitor = HealthMonitor(
        env, HealthPolicy(enabled=True, check_interval_us=100.0), [state]
    )
    for _ in range(20):
        monitor.note_restore_latency(state, 1e9)
    assert state.healthy


# -- cluster integration -----------------------------------------------

DURABILITY = DurabilityPolicy(enabled=True, replicas=2)


def _corruption_plan(*specs):
    return FaultPlan(
        corruptions=[
            SnapshotCorruption(host=h, function=f, at_us=at)
            for h, f, at in specs
        ]
    )


def test_cluster_detects_and_survives_corruption():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(10)
    config = ClusterConfig(
        num_hosts=2,
        seed=5,
        keep_alive_ttl_us=0.0,
        assume_snapshots_exist=True,
        recovery=RecoveryPolicy.full(),
        durability=DURABILITY,
    )
    plan = _corruption_plan(("host0", "f0", 100_000.0))
    simulator = ClusterSimulator(fleet, config)
    report = simulator.run(trace, fault_plan=plan)
    summary = report.fault_summary
    assert summary["corruptions_applied"] == 1
    assert (
        summary["corruptions_detected_restore"]
        + summary["corruptions_detected_scrub"]
    ) >= 1
    assert summary["silent_corrupt_serves"] == 0
    assert report.availability() == 1.0
    counts = report.outcome_counts()
    assert counts[InvocationOutcome.FAILED.value] == 0


def test_recovery_off_measurably_fails_on_corruption():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(10)
    plan = _corruption_plan(
        ("host0", "f0", 100_000.0), ("host1", "f1", 100_000.0)
    )
    config = ClusterConfig(
        num_hosts=2,
        seed=5,
        keep_alive_ttl_us=0.0,
        assume_snapshots_exist=True,
        recovery=DISABLED_RECOVERY,
        durability=DurabilityPolicy(enabled=True, replicas=1),
    )
    report = ClusterSimulator(fleet, config).run(trace, fault_plan=plan)
    assert report.availability() < 1.0
    assert report.fault_summary["corruptions_detected_restore"] >= 1


def test_disabled_policy_is_bit_identical_to_no_policy():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(8)
    base = ClusterConfig(num_hosts=2, seed=5)
    with_policy = ClusterConfig(
        num_hosts=2, seed=5, durability=DISABLED_DURABILITY
    )
    plain = ClusterSimulator(fleet, base).run(trace)
    gated = ClusterSimulator(fleet, with_policy).run(trace)
    assert [
        (s.time_us, s.function, s.latency_us, s.host)
        for s in plain.served
    ] == [
        (s.time_us, s.function, s.latency_us, s.host)
        for s in gated.served
    ]


def test_sharded_durability_event_stream_is_shard_invariant():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(12, spacing_us=300_000.0)
    plan = _corruption_plan(
        ("host0", "f0", 200_000.0),
        ("host1", "f1", 900_000.0),
        ("host0", "f1", 1_800_000.0),
    )
    streams = {}
    for shards in (1, 2):
        config = ClusterConfig(
            num_hosts=2,
            seed=7,
            keep_alive_ttl_us=0.0,
            assume_snapshots_exist=True,
            recovery=RecoveryPolicy.full(),
            durability=DurabilityPolicy(
                enabled=True, replicas=2, scrub_interval_us=1_000_000.0
            ),
        )
        simulator = ShardedClusterSimulator(fleet, config, shards=shards)
        report = simulator.run(trace, fault_plan=plan)
        streams[shards] = json.dumps(
            simulator.durability_events, sort_keys=True
        )
        assert report.fault_summary["corruptions_applied"] == 3
    assert streams[1] == streams[2]
    assert streams[1] != "[]"


def test_bitrot_storm_drill_detects_everything():
    from repro.faults.chaos import run_chaos

    report = run_chaos("bitrot-storm", num_hosts=4, seed=1, arrivals=60)
    assert report.detection_rate == 1.0
    assert report.silent_corrupt_serves == 0
    assert report.corruptions_detected >= 1
    assert report.availability >= 0.99
    doc = report.as_dict()
    assert doc["detection_rate"] == 1.0


def test_fail_slow_fault_drains_and_recovers_host():
    fleet = fleet_of("f0", "f1")
    trace = spaced_trace(24, spacing_us=400_000.0)
    config = ClusterConfig(
        num_hosts=2,
        seed=5,
        keep_alive_ttl_us=0.0,
        assume_snapshots_exist=True,
        recovery=RecoveryPolicy(
            health=HealthPolicy(
                enabled=True,
                check_interval_us=100_000.0,
                reintegrate_after_us=500_000.0,
                # The device slowdown reaches the restore latency
                # diluted by compute time, so the end-to-end outlier
                # factor is far below the raw device factor.
                fail_slow_factor=2.0,
                fail_slow_min_samples=3,
                fail_slow_window=6,
            )
        ),
    )
    plan = FaultPlan(
        fail_slows=[
            FailSlow(
                host="host0",
                start_us=5_000_000.0,
                slowdown=50.0,
                duration_us=3_000_000.0,
            )
        ]
    )
    simulator = ClusterSimulator(fleet, config)
    report = simulator.run(trace, fault_plan=plan)
    summary = report.fault_summary
    assert summary["fail_slows_applied"] == 1
    assert summary["fail_slows_recovered"] == 1
    assert report.availability() == 1.0
    # The outlier detector drained the slow host off rotation.
    assert simulator.monitor.fail_slow_drains >= 1


# -- service plane -----------------------------------------------------


def test_service_scrub_and_status_replay_bit_identically(tmp_path):
    from repro.service.commands import parse_command
    from repro.service.core import build_service, replay_journal
    from repro.service.journal import JournalWriter

    path = tmp_path / "durability.journal"
    spec = {
        "hosts": 2,
        "functions": 4,
        "seed": 3,
        "durability": {"enabled": True, "replicas": 2},
        "source": {"kind": "poisson", "seed": 2},
    }
    service = build_service(spec, journal=JournalWriter(path))
    service.execute(parse_command("advance 2000"))
    result = service.execute(parse_command("scrub"))
    assert result["scrub"]["enabled"] is True
    result = service.execute(parse_command("durability-status"))
    assert result["durability"]["enabled"] is True
    assert "durability_sha256" in result["digest"]
    service.execute(parse_command("drain"))
    outcome = replay_journal(path)
    assert outcome.ok, outcome.mismatches


def test_service_without_durability_reports_disabled(tmp_path):
    from repro.service.commands import parse_command
    from repro.service.core import build_service

    service = build_service({"hosts": 1, "functions": 2, "seed": 1})
    result = service.execute(parse_command("durability-status"))
    assert result["durability"] == {"enabled": False}
    assert service.execute(parse_command("scrub"))["scrub"] == {
        "enabled": False
    }


# -- properties --------------------------------------------------------


@given(
    replicas=st.integers(min_value=1, max_value=4),
    ops=st.lists(
        st.sampled_from(["corrupt", "verify", "scrub", "publish", "run"]),
        max_size=40,
    ),
)
@settings(max_examples=100, deadline=None)
def test_replica_conservation_under_interleavings(replicas, ops):
    """Under any interleaving of corruption, verified restores,
    scrubs, publishes, and time advancing, every replica set keeps
    exactly R replicas in valid states, and is either readable or
    explicitly rebuilding — never silently lost."""
    env = Environment(seed=9)
    manager = DurabilityManager(
        env,
        DurabilityPolicy(enabled=True, replicas=replicas),
        checksum_fn=lambda host, fn: GOLDEN,
    )
    for op in ops:
        if op == "corrupt":
            manager.mark_corrupt("host0", "f0")
        elif op == "verify":
            manager.verify_restore("host0", "f0")
        elif op == "scrub":
            manager.scrub_now()
        elif op == "publish":
            manager.publish("host0", "f0")
        elif op == "run":
            env.run(until=env.now + 50_000.0)
        rs = manager.ensure("host0", "f0")
        assert len(rs.replicas) == replicas
        assert all(
            r.state in (HEALTHY, QUARANTINED) for r in rs.replicas
        )
        assert rs.readable or rs.rebuilding
        # Quarantined replicas are never the pick.
        picked = rs.pick()
        if picked is not None:
            assert picked.state == HEALTHY
        else:
            assert rs.rebuilding
    # Detection conservation: every applied corruption is either
    # still latent on disk, detected, or wiped by a rebuild.
    assert (
        manager.detected_restore + manager.detected_scrub
        <= manager.corruptions_applied
    )
    # Let outstanding repairs finish: the set must converge back to
    # fully healthy (no budget pressure in this model).
    env.run()
    rs = manager.ensure("host0", "f0")
    healed = all(
        r.state == HEALTHY for r in rs.replicas
    ) or rs.rebuilding
    assert healed


@given(
    min_budget=st.floats(min_value=0.0, max_value=10.0),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    ops=st.lists(
        st.sampled_from(["arrival", "retry", "corrupt+verify", "run"]),
        max_size=60,
    ),
)
@settings(max_examples=100, deadline=None)
def test_retry_budget_conserved_with_repair_traffic(
    min_budget, ratio, ops
):
    """Mixing durability repairs into the retry budget must preserve
    token conservation: ``tokens == min_budget + ratio*arrivals -
    spent`` at every instant, and spending (serving retries + repair
    grants) never exceeds earnings."""
    env = Environment(seed=11)
    budget = RetryBudget(min_budget=min_budget, ratio=ratio)
    manager = DurabilityManager(
        env,
        DurabilityPolicy(
            enabled=True, replicas=2, repair_retry_us=10_000.0
        ),
        checksum_fn=lambda host, fn: GOLDEN,
        budget_fn=lambda: budget,
    )
    for op in ops:
        if op == "arrival":
            budget.on_arrival()
        elif op == "retry":
            budget.try_spend()
        elif op == "corrupt+verify":
            manager.mark_corrupt("host0", "f0")
            manager.verify_restore("host0", "f0")
        elif op == "run":
            env.run(until=env.now + 25_000.0)
        earned = budget.min_budget + budget.ratio * budget.arrivals
        assert budget.spent <= earned + 1e-9
        assert abs(budget.tokens - (earned - budget.spent)) < 1e-6
        assert budget.tokens >= 0.0
    manager.stop()
    env.run()
    earned = budget.min_budget + budget.ratio * budget.arrivals
    assert budget.spent <= earned + 1e-9
    # Every completed repair paid exactly one token.
    assert manager.repairs <= budget.spent + 1e-9 or manager.repairs == 0
