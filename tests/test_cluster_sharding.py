"""Sharded cluster execution: the determinism contract.

The golden-parity tests here are the ISSUE's acceptance criteria:
``shards=1`` and ``shards=N`` must produce bit-identical outcome
streams, latency checksums, and merged telemetry for the same
(trace, seed, fault plan) — including an armed-recovery run — and
nearest-rank percentiles from shard-merged histograms must match the
single-protocol run exactly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    ShardedClusterSimulator,
    TIER_SHARED_EBS,
    partition_hosts,
    plan_for_host,
)
from repro.cluster.placement import (
    HealthFiltered,
    LeastLoaded,
    SnapshotLocality,
    StaticHostView,
)
from repro.experiments.runner import parallel_map
from repro.faults import (
    DeviceFault,
    FaultPlan,
    HostCrash,
    RecoveryPolicy,
    RetryBudget,
    RetryPolicy,
    SnapshotCorruption,
    rebalance_tokens,
)
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.metrics.stats import Histogram
from repro.sim import Environment, SimulationError

import pytest

SECOND = 1_000_000.0


def fleet_of(*names):
    return [
        FleetFunction(
            name=name, profile_name="json", mean_interarrival_us=SECOND
        )
        for name in names
    ]


def burst_trace(count, spacing_us=120_000.0, functions=("f0", "f1", "f2")):
    arrivals = [
        Arrival(
            time_us=i * spacing_us,
            function=functions[i % len(functions)],
        )
        for i in range(count)
    ]
    return ArrivalTrace(
        arrivals=arrivals, duration_us=count * spacing_us + 1
    )


def served_tuples(report):
    return [
        (s.time_us, s.function, s.kind, s.latency_us, s.host,
         s.outcome, s.attempts)
        for s in report.served
    ]


def latency_checksum(report):
    return sum(s.latency_us for s in report.served)


def run_sharded(fleet, config, trace, shards, fault_plan=None):
    sim = ShardedClusterSimulator(fleet, config, shards=shards)
    report = sim.run(trace, fault_plan=fault_plan)
    return sim, report


# -- golden parity -----------------------------------------------------


def test_golden_parity_unarmed():
    """shards=1 vs shards=2 vs shards=4: bit-identical streams,
    checksum, and merged telemetry on a fault-free run."""
    fleet = fleet_of("f0", "f1", "f2")
    trace = burst_trace(18)
    config = ClusterConfig(num_hosts=4, placement="least-loaded", seed=3)
    sim1, r1 = run_sharded(fleet, config, trace, shards=1)
    base = served_tuples(r1)
    assert len(base) == 18
    for shards in (2, 4):
        simn, rn = run_sharded(fleet, config, trace, shards=shards)
        assert served_tuples(rn) == base
        assert latency_checksum(rn) == latency_checksum(r1)
        assert simn.merged_metrics == sim1.merged_metrics
        assert rn.prep_us == r1.prep_us
        assert rn.evictions == r1.evictions


ARMED_PLAN = FaultPlan(
    device_faults=(
        DeviceFault(
            scope="shared",
            start_us=0.4 * SECOND,
            duration_us=1.2 * SECOND,
            bandwidth_factor=0.05,
            latency_factor=10.0,
            error_rate=0.4,
        ),
    ),
    host_crashes=(
        HostCrash(
            host="host3",
            at_us=0.6 * SECOND,
            reboot_after_us=1.0 * SECOND,
        ),
    ),
    corruptions=(
        SnapshotCorruption(host="host1", function="f1", at_us=0.0),
    ),
)

ARMED_RECOVERY = RecoveryPolicy.full(
    deadline_us=20 * SECOND, max_queue_depth=32, degraded_queue_depth=8
)


def test_golden_parity_armed_recovery():
    """The acceptance criterion's armed run: full recovery policy,
    shared-EBS degradation, a host crash, and a snapshot corruption —
    still bit-identical across shard counts."""
    fleet = fleet_of("f0", "f1", "f2")
    trace = burst_trace(24, spacing_us=100_000.0)
    config = ClusterConfig(
        num_hosts=4,
        placement="least-loaded",
        seed=11,
        snapshot_tier=TIER_SHARED_EBS,
        recovery=ARMED_RECOVERY,
    )
    sim1, r1 = run_sharded(fleet, config, trace, 1, fault_plan=ARMED_PLAN)
    base = served_tuples(r1)
    assert len(base) == 24
    # The plan must actually bite for this test to mean anything.
    outcomes = {s.outcome.value for s in r1.served}
    assert outcomes != {"ok"}
    for shards in (2, 4):
        simn, rn = run_sharded(
            fleet, config, trace, shards, fault_plan=ARMED_PLAN
        )
        assert served_tuples(rn) == base
        assert latency_checksum(rn) == latency_checksum(r1)
        assert simn.merged_metrics == sim1.merged_metrics


def test_sharded_run_is_repeatable():
    fleet = fleet_of("f0", "f1")
    trace = burst_trace(10, functions=("f0", "f1"))
    config = ClusterConfig(num_hosts=2, seed=9)
    _, a = run_sharded(fleet, config, trace, 2)
    _, b = run_sharded(fleet, config, trace, 2)
    assert served_tuples(a) == served_tuples(b)


# -- percentile merging (report layer) ---------------------------------


def test_percentile_merge_matches_single_protocol_run():
    """Nearest-rank percentiles from the shard-merged latency
    histograms equal the single-protocol run's, bucket for bucket and
    percentile for percentile — and the report's own nearest-rank
    percentiles agree across shard counts too."""
    fleet = fleet_of("f0", "f1", "f2")
    trace = burst_trace(20)
    config = ClusterConfig(num_hosts=4, placement="locality", seed=21)
    sim1, r1 = run_sharded(fleet, config, trace, 1)
    sim4, r4 = run_sharded(fleet, config, trace, 4)
    h1, h4 = sim1.latency_histogram, sim4.latency_histogram
    assert isinstance(h1, Histogram)
    assert h1.edges == h4.edges
    assert h1.counts == h4.counts
    assert h1.total == len(r1.served)
    for p in (50, 90, 95, 99, 100):
        assert h1.percentile(p) == h4.percentile(p)
        assert r1.latency_percentile(p) == r4.latency_percentile(p)
    # The merged-snapshot path carries the same histogram.
    snap1 = sim1.merged_metrics["histograms"]["cluster.latency_us"]
    snap4 = sim4.merged_metrics["histograms"]["cluster.latency_us"]
    assert snap1 == snap4
    assert snap1["counts"] == h1.counts


# -- cross-shard fault interactions ------------------------------------


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_cross_shard_fault_parity_over_seeds(seed):
    """A shared-EBS degradation window plus a crash of a host that
    lives in a *different* shard than most serving traffic must not
    disturb parity: with 4 hosts and 4 shards, host0 (the locality
    target) and host3 (the crash victim) are in different shards by
    construction of ``partition_hosts``."""
    fleet = fleet_of("f0", "f1")
    trace = burst_trace(
        12, spacing_us=150_000.0, functions=("f0", "f1")
    )
    config = ClusterConfig(
        num_hosts=4,
        placement="locality",
        seed=seed,
        snapshot_tier=TIER_SHARED_EBS,
        recovery=RecoveryPolicy(
            retry=RetryPolicy(enabled=True, max_attempts=3)
        ),
    )
    plan = FaultPlan(
        device_faults=(
            DeviceFault(
                scope="shared",
                start_us=0.2 * SECOND,
                duration_us=1.0 * SECOND,
                bandwidth_factor=0.1,
                error_rate=0.3,
            ),
        ),
        host_crashes=(
            HostCrash(host="host3", at_us=0.5 * SECOND),
        ),
    )
    groups = partition_hosts(4, 4)
    assert [0] in groups and [3] in groups  # genuinely cross-shard
    _, r1 = run_sharded(fleet, config, trace, 1, fault_plan=plan)
    _, r4 = run_sharded(fleet, config, trace, 4, fault_plan=plan)
    assert served_tuples(r4) == served_tuples(r1)


# -- protocol pieces ---------------------------------------------------


def test_partition_hosts_shapes():
    assert partition_hosts(4, 2) == [[0, 1], [2, 3]]
    assert partition_hosts(5, 2) == [[0, 1, 2], [3, 4]]
    assert partition_hosts(2, 8) == [[0], [1]]
    flat = [i for g in partition_hosts(64, 7) for i in g]
    assert flat == list(range(64))
    with pytest.raises(ValueError):
        partition_hosts(0, 1)


def test_plan_for_host_filters_scopes():
    plan = ARMED_PLAN
    sub = plan_for_host(plan, "host3")
    assert len(sub.device_faults) == 1  # shared scope applies everywhere
    assert len(sub.host_crashes) == 1
    assert len(sub.corruptions) == 0
    other = plan_for_host(plan, "host1")
    assert len(other.host_crashes) == 0
    assert len(other.corruptions) == 1
    assert plan_for_host(None, "host0") is None


def test_static_host_view_drives_placement():
    views = [
        StaticHostView(index=0, base_load=2),
        StaticHostView(index=1, base_load=1, idle_warm=frozenset({"f"})),
        StaticHostView(index=2, base_load=0, snapshots=frozenset({"f"})),
    ]
    assert SnapshotLocality().choose(views, "f") == 1
    assert LeastLoaded().choose(views, "f") == 2
    views[1].projected += 5
    assert views[1].load == 6
    views[2].healthy = False
    filtered = HealthFiltered(LeastLoaded())
    assert filtered.choose(views, "f") == 0  # host2 unhealthy, host1 loaded


def test_retry_budget_partitioning_conserves_tokens():
    whole = RetryBudget(10.0, 0.1)
    parts = [RetryBudget.partitioned(10.0, 0.1, 4) for _ in range(4)]
    assert sum(p.tokens for p in parts) == whole.tokens
    parts[0].tokens = 0.2
    parts[1].tokens = 6.3
    rebalanced = rebalance_tokens([p.tokens for p in parts])
    assert len(rebalanced) == 4
    assert rebalanced[0] == rebalanced[3]
    assert math.isclose(
        sum(rebalanced), 0.2 + 6.3 + 2.5 + 2.5, rel_tol=1e-12
    )
    assert rebalance_tokens([]) == []


def test_advance_to_bounded_stepping():
    env = Environment(seed=1)
    fired = []

    def ticker():
        while True:
            yield env.timeout(10.0)
            fired.append(env.now)

    env.process(ticker(), name="ticker")
    count = env.advance_to(35.0)
    assert env.now == 35.0
    assert fired == [10.0, 20.0, 30.0]
    assert count >= 3
    # Landing exactly on an event time includes it.
    env.advance_to(40.0)
    assert fired[-1] == 40.0
    with pytest.raises(SimulationError):
        env.advance_to(12.0)


# -- parallel_map spawn fallback ---------------------------------------


def _square(x):
    return x * x


def test_parallel_map_spawn_start_method():
    items = list(range(6))
    expected = [_square(i) for i in items]
    assert parallel_map(_square, items, jobs=2, start_method="spawn") == (
        expected
    )
    assert parallel_map(_square, items, jobs=2, start_method="fork") == (
        expected
    )
    assert parallel_map(_square, items, jobs=1) == expected
