"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_functions_command(capsys):
    assert main(["functions"]) == 0
    out = capsys.readouterr().out
    assert "hello-world" in out
    assert "recognition" in out
    assert "Table 2" in out


def test_invoke_command_single_policy(capsys):
    code = main(
        ["invoke", "hello-world", "--policy", "faasnap", "--input", "A"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "faasnap" in out
    assert "hello-world" in out


def test_invoke_command_ratio_input(capsys):
    code = main(
        ["invoke", "hello-world", "--policy", "cached", "--input", "0.5"]
    )
    assert code == 0
    assert "cached" in capsys.readouterr().out


def test_invoke_rejects_unknown_function():
    with pytest.raises(SystemExit):
        main(["invoke", "nope"])


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_experiment_table2(capsys):
    assert main(["experiment", "table2"]) == 0
    assert "working sets" in capsys.readouterr().out


def test_fleet_command(capsys):
    code = main(
        [
            "fleet",
            "--functions",
            "10",
            "--hours",
            "0.5",
            "--policy",
            "faasnap",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean latency" in out
    assert "warm %" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
