"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_functions_command(capsys):
    assert main(["functions"]) == 0
    out = capsys.readouterr().out
    assert "hello-world" in out
    assert "recognition" in out
    assert "Table 2" in out


def test_invoke_command_single_policy(capsys):
    code = main(
        ["invoke", "hello-world", "--policy", "faasnap", "--input", "A"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "faasnap" in out
    assert "hello-world" in out


def test_invoke_command_ratio_input(capsys):
    code = main(
        ["invoke", "hello-world", "--policy", "cached", "--input", "0.5"]
    )
    assert code == 0
    assert "cached" in capsys.readouterr().out


def test_invoke_rejects_unknown_function():
    with pytest.raises(SystemExit):
        main(["invoke", "nope"])


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_experiment_table2(capsys):
    assert main(["experiment", "table2"]) == 0
    assert "working sets" in capsys.readouterr().out


def test_fleet_command(capsys):
    code = main(
        [
            "fleet",
            "--functions",
            "10",
            "--hours",
            "0.5",
            "--policy",
            "faasnap",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean latency" in out
    assert "warm %" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- telemetry outputs -------------------------------------------------


def test_telemetry_command_renders_report(capsys):
    code = main(["telemetry", "hello-world", "--policy", "faasnap"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Profiler phases" in out
    assert "(unattributed)" in out
    assert "Page-cache hit rates" in out
    assert "Sampled gauges" in out


def test_telemetry_command_writes_all_outputs(tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.json"
    chrome = tmp_path / "chrome.json"
    prom = tmp_path / "metrics.prom"
    code = main(
        [
            "telemetry",
            "hello-world",
            "--metrics-out",
            str(metrics),
            "--chrome-trace",
            str(chrome),
            "--prometheus-out",
            str(prom),
        ]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(metrics.read_text())
    assert doc["schema"] == "repro.telemetry/1"
    assert "sim.engine.events" in doc["counters"]
    assert doc["samples"]["times_us"]
    trace = json.loads(chrome.read_text())
    assert trace["traceEvents"]
    assert {"ph", "ts", "dur", "pid", "tid", "name"} <= set(
        trace["traceEvents"][0]
    )
    assert "# TYPE" in prom.read_text()


def test_invoke_metrics_out(tmp_path, capsys):
    import json

    path = tmp_path / "m.json"
    code = main(
        [
            "invoke",
            "hello-world",
            "--policy",
            "faasnap",
            "--metrics-out",
            str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["counters"]["host0.invocations"] == 1


def test_cluster_metrics_out_enables_sampler(tmp_path, capsys):
    import json

    path = tmp_path / "cluster.json"
    code = main(
        [
            "cluster",
            "--functions",
            "2",
            "--hours",
            "0.05",
            "--hosts",
            "2",
            "--metrics-out",
            str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert "cluster.scheduler.invocations" in doc["counters"]
    # --metrics-out without --sample-interval-ms defaults to 100 ms.
    assert doc["samples"]["interval_us"] == 100_000.0


def test_output_path_with_missing_directory_fails(tmp_path, capsys):
    path = tmp_path / "no" / "such" / "dir" / "m.json"
    code = main(
        [
            "invoke",
            "hello-world",
            "--policy",
            "faasnap",
            "--metrics-out",
            str(path),
        ]
    )
    assert code == 2
    assert "does not exist" in capsys.readouterr().err
    assert not path.exists()


def test_experiment_metrics_out_merges_shards(tmp_path, capsys):
    import json

    path = tmp_path / "merged.json"
    code = main(
        ["experiment", "fig2", "--metrics-out", str(path)]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["shards"] >= 1
    assert doc["virtual_time_us"] > 0
    assert "gauges" not in doc


def test_cluster_report_out_writes_serving_report(tmp_path, capsys):
    import json

    path = tmp_path / "report.json"
    code = main(
        [
            "cluster",
            "--functions",
            "2",
            "--hours",
            "0.5",
            "--hosts",
            "2",
            "--seed",
            "0",
            "--report-out",
            str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.fleet-report/1"
    assert doc["availability"] == 1.0
    assert doc["invocations"]
    assert all(
        entry["outcome"] == "ok" for entry in doc["invocations"]
    )
    assert set(doc["host_failures"]) == {"host0", "host1"}
