"""Tests for the unified telemetry layer: registry, profiler,
sampler, cross-layer instrumentation, and the zero-perturbation
invariant."""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulator
from repro.core import FaaSnapPlatform, Policy
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.metrics.stats import FIGURE2_EDGES
from repro.metrics.telemetry import (
    HistogramInstrument,
    MetricsRegistry,
    Profiler,
    Sampler,
    TelemetryError,
    hit_rates,
    render_run_report,
)
from repro.sim import Environment
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A

SECOND = 1_000_000.0


# -- registry ----------------------------------------------------------


def test_counter_inc_and_idempotent_creation():
    registry = MetricsRegistry()
    ctr = registry.counter("a.b")
    ctr.inc()
    ctr.inc(3)
    assert ctr.read() == 4
    assert registry.counter("a.b") is ctr
    assert "a.b" in registry


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TelemetryError):
        registry.gauge("x", lambda: 0)
    with pytest.raises(TelemetryError):
        registry.histogram("x")
    with pytest.raises(TelemetryError):
        registry.pull_counter("x", lambda: 0)


def test_pull_counter_reads_live_state():
    registry = MetricsRegistry()
    state = {"n": 0}
    pull = registry.pull_counter("live", lambda: state["n"])
    assert pull.read() == 0
    state["n"] = 7
    assert pull.read() == 7


def test_unique_prefix_suffixes_collisions():
    registry = MetricsRegistry()
    assert registry.unique_prefix("host") == "host"
    assert registry.unique_prefix("host") == "host.2"
    assert registry.unique_prefix("host") == "host.3"
    assert registry.unique_prefix("other") == "other"


def test_histogram_instrument_buckets_and_sum():
    inst = HistogramInstrument("h", [0.0, 1.0, 10.0])
    for value in (0.5, 5.0, 100.0, -2.0):
        inst.observe(value)
    assert inst.histogram.counts == [2, 1, 1]
    assert inst.count == 4
    assert inst.sum == pytest.approx(103.5)


def test_histogram_instrument_matches_linear_scan_add():
    """The bisect fast path must bucket exactly like Histogram.add."""
    from repro.metrics.stats import Histogram

    inst = HistogramInstrument("h", FIGURE2_EDGES)
    reference = Histogram(edges=list(FIGURE2_EDGES))
    values = [0.1, 0.5, 0.9, 1.0, 3.3, 512.0, 9999.0]
    for v in values:
        inst.observe(v)
        reference.add(v)
    assert inst.histogram.counts == reference.counts


def test_collect_groups_by_kind():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g", lambda: 11)
    registry.histogram("h", [0.0, 1.0]).observe(0.5)
    snapshot = registry.collect()
    assert snapshot["counters"] == {"c": 2}
    assert snapshot["gauges"] == {"g": 11}
    assert snapshot["histograms"]["h"]["counts"] == [1, 0]
    assert snapshot["histograms"]["h"]["count"] == 1


# -- profiler ----------------------------------------------------------


def test_profiler_phases_and_coverage():
    profiler = Profiler()
    profiler.phase("setup", 0.0, 40.0)
    profiler.phase("invoke", 40.0, 100.0)
    profiler.add("fault.minor", 5.0, events=3)  # detail, not a phase
    assert profiler.attributed_us() == pytest.approx(100.0)
    assert profiler.coverage(100.0) == pytest.approx(1.0)
    assert profiler.coverage(200.0) == pytest.approx(0.5)


def test_profiler_report_rows_include_unattributed():
    profiler = Profiler()
    profiler.phase("setup", 0.0, 60.0)
    rows = profiler.report_rows(total_us=100.0)
    assert rows[-1][0] == "(unattributed)"
    assert rows[-1][1] == pytest.approx(0.04)  # 40 us in ms
    assert rows[-1][3] == pytest.approx(40.0)  # share %


def test_profiler_pull_components_merge():
    profiler = Profiler()
    profiler.add("device.service", 10.0, events=2)
    profiler.add_pull("device.service", lambda: (5.0, 1))
    stat = profiler.components()["device.service"]
    assert stat.time_us == pytest.approx(15.0)
    assert stat.events == 3
    # Pulls are read at collection time, never folded into the owned
    # state: a second snapshot sees the same numbers.
    again = profiler.components()["device.service"]
    assert again.time_us == pytest.approx(15.0)


# -- sampler -----------------------------------------------------------


def test_sampler_rejects_nonpositive_interval():
    registry = MetricsRegistry()
    env = Environment()
    with pytest.raises(TelemetryError):
        Sampler(registry, env, 0.0)


def test_sampler_polls_gauges_on_virtual_interval():
    env = Environment()
    registry = env.metrics
    registry.gauge("clock", lambda: env.now)
    sampler = Sampler(registry, env, interval_us=10.0)
    sampler.start()

    def driver():
        yield env.timeout(35.0)

    env.run(until=env.process(driver()))
    sampler.stop()
    series = sampler.series("clock")
    # Virtual time halted at 35.0, between ticks: stop() flushes one
    # final sample at the stop horizon so the partial window survives.
    expected = [0.0, 10.0, 20.0, 30.0, 35.0]
    assert [t for t, _ in series] == pytest.approx(expected)
    assert [v for _, v in series] == pytest.approx(expected)
    assert sampler.values("clock") == pytest.approx(expected)
    # A second stop() is idempotent — no duplicate flush.
    sampler.stop()
    assert len(sampler.samples) == len(expected)


def test_sampler_percentile_nearest_rank():
    env = Environment()
    registry = env.metrics
    sampler = Sampler(registry, env, interval_us=1.0)
    for value in (10.0, 30.0, 20.0, 40.0):
        sampler.samples.append((env.now, {"g": value}))
    assert sampler.percentile("g", 0) == 10.0
    assert sampler.percentile("g", 50) == 20.0
    assert sampler.percentile("g", 100) == 40.0
    assert sampler.percentile("missing", 50) == 0.0


def test_sampler_as_dict_is_columnar():
    env = Environment()
    sampler = Sampler(env.metrics, env, interval_us=5.0)
    sampler.samples.append((0.0, {"a": 1}))
    sampler.samples.append((5.0, {"a": 2, "b": 9}))
    doc = sampler.as_dict()
    assert doc["interval_us"] == 5.0
    assert doc["times_us"] == [0.0, 5.0]
    assert doc["gauges"]["a"] == [1, 2]
    assert doc["gauges"]["b"] == [None, 9]  # late-registered gauge


# -- cross-layer instrumentation ---------------------------------------


def invoke_platform(policy=Policy.FAASNAP, with_sampler=False):
    platform = FaaSnapPlatform()
    handle = platform.register_function(get_profile("hello-world"))
    sampler = None
    if with_sampler:
        sampler = Sampler(platform.metrics, platform.env, 1_000.0)
        sampler.start()
    result = platform.invoke(handle, INPUT_A, policy)
    if sampler is not None:
        sampler.stop()
    return platform, result, sampler


def test_one_registry_holds_every_layer():
    platform, _, _ = invoke_platform()
    names = set(platform.metrics.names())
    # Kernel, storage, page cache, fault/vcpu/uffd, and host layers
    # all report into the same per-Environment registry.
    assert "sim.engine.events" in names
    assert "host0.device.requests" in names
    assert "host0.page_cache.hits" in names
    assert "host0.fault.time_us" in names
    assert "host0.vcpu.fast_path_accesses" in names
    assert "host0.uffd.delegated_faults" in names
    assert "host0.invocations" in names
    assert platform.metrics is platform.env.metrics


def test_invoke_populates_fault_telemetry():
    platform, result, _ = invoke_platform()
    registry = platform.metrics
    fault_hist = registry.get("host0.fault.time_us")
    # Record phase + test phase both absorb their fault records.
    assert fault_hist.count >= result.fault_count()
    hits = registry.get("host0.page_cache.hits").read()
    misses = registry.get("host0.page_cache.misses").read()
    assert hits + misses > 0
    (row,) = hit_rates(registry)
    assert row[0] == "host0"
    assert row[1] == hits
    assert registry.get("host0.invocations").read() == 1
    assert registry.get("host0.record_phases").read() == 1


def test_profiler_attributes_virtual_time():
    """The acceptance bar: phases must explain >= 95% of a multi-policy
    run's virtual time, with the remainder reported explicitly."""
    platform = FaaSnapPlatform()
    handle = platform.register_function(get_profile("hello-world"))
    for policy in (Policy.FAASNAP, Policy.REAP, Policy.CACHED):
        platform.invoke(handle, INPUT_A, policy)
    profiler = platform.metrics.profiler
    coverage = profiler.coverage(platform.env.now)
    assert coverage >= 0.95
    rows = profiler.report_rows(platform.env.now)
    assert rows[-1][0] == "(unattributed)"
    components = profiler.components()
    assert "phase.record" in components
    assert "phase.invoke" in components
    assert "phase.setup.faasnap" in components
    assert "fault.minor" in components


def test_render_run_report_sections():
    platform, _, sampler = invoke_platform(with_sampler=True)
    report = render_run_report(
        platform.metrics, platform.env.now, sampler=sampler
    )
    assert "Profiler phases" in report
    assert "(unattributed)" in report
    assert "Page-cache hit rates" in report
    assert "Counters" in report
    assert "Sampled gauges" in report


def test_vcpu_path_counters_cover_every_access():
    platform, result, _ = invoke_platform()
    registry = platform.metrics
    fast = registry.get("host0.vcpu.fast_path_accesses").read()
    slow = registry.get("host0.vcpu.event_path_accesses").read()
    assert fast > 0
    # Every access takes one of the two paths; the fault-time
    # histogram skips the kind="none" records the paths still count.
    assert fast + slow >= registry.get("host0.fault.time_us").count


# -- cluster instrumentation -------------------------------------------


def cluster_run(sampler_interval_us=None):
    fleet = [
        FleetFunction(
            name="hello-world",
            profile_name="hello-world",
            mean_interarrival_us=SECOND,
        )
    ]
    trace = ArrivalTrace(
        arrivals=[
            Arrival(time_us=t * SECOND, function="hello-world")
            for t in (0.0, 30.0, 45.0)
        ],
        duration_us=46 * SECOND,
    )
    config = ClusterConfig(num_hosts=2, keep_alive_ttl_us=18 * SECOND)
    simulator = ClusterSimulator(fleet, config)
    report = simulator.run(trace, sampler_interval_us=sampler_interval_us)
    return simulator, report


def test_cluster_registry_covers_scheduler_and_hosts():
    simulator, report = cluster_run()
    names = set(simulator.registry.names())
    assert "cluster.scheduler.invocations" in names
    assert "cluster.placement.decisions" in names
    assert "cluster.placement.to.host0" in names
    assert "host0.scheduler.active" in names
    assert "host1.scheduler.memory_mb" in names
    assert "host0.page_cache.hits" in names
    invocations = simulator.registry.get("cluster.scheduler.invocations")
    assert invocations.read() == report.count()
    decisions = simulator.registry.get("cluster.placement.decisions")
    assert decisions.read() == report.count()


def test_cluster_sampler_records_series():
    simulator, _ = cluster_run(sampler_interval_us=SECOND)
    sampler = simulator.sampler
    assert sampler is not None
    assert len(sampler.samples) > 10
    assert "host0.scheduler.active" in sampler.gauge_names()


# -- zero perturbation -------------------------------------------------


def canonical(result):
    return (
        result.setup_us,
        result.invoke_us,
        result.fetch_time_us,
        result.uffd_faults,
        tuple(
            (r.kind, r.page, r.start_us, r.duration_us, r.block_requests)
            for r in result.fault_records
        ),
    )


def test_sampler_does_not_perturb_invocation():
    _, bare, _ = invoke_platform()
    _, sampled, _ = invoke_platform(with_sampler=True)
    assert canonical(bare) == canonical(sampled)


def test_sampler_does_not_perturb_cluster():
    _, bare = cluster_run()
    _, sampled = cluster_run(sampler_interval_us=100_000.0)
    assert [s.latency_us for s in bare.served] == [
        s.latency_us for s in sampled.served
    ]
    assert [s.kind for s in bare.served] == [s.kind for s in sampled.served]
