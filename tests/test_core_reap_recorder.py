"""Unit tests for the REAP baseline pieces and the mincore recorder."""

import pytest

from repro.core.reap import (
    make_reap_fault_handler,
    reap_setup,
    write_working_set_file,
)
from repro.core.recorder import mincore_recorder
from repro.core.working_set import ReapWorkingSet
from repro.host import HostParams, PageCache, Procfs
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import MicroVM, VmmParams, create_snapshot

HOST = HostParams()


class Rig:
    def __init__(self):
        self.env = Environment()
        self.device = BlockDevice(
            self.env, DeviceSpec("d", 100, 10, 1589, 285_000, queue_depth=16)
        )
        self.store = FileStore(self.env, self.device)
        self.cache = PageCache(self.env)

    def run(self, gen):
        return self.env.run(until=self.env.process(gen))


def test_ws_file_layout_follows_fault_order():
    rig = Rig()
    snapshot = create_snapshot(rig.store, "fn", 100, {3: 33, 7: 77, 9: 0})
    ws = ReapWorkingSet(pages_in_fault_order=[7, 3, 9])
    f = write_working_set_file(rig.store, "fn.ws", ws, snapshot)
    assert f.num_pages == 3
    assert f.page_value(0) == 77  # first-faulted page first
    assert f.page_value(1) == 33
    assert f.page_value(2) == 0


def test_reap_setup_installs_ptes_and_reads_sequentially():
    rig = Rig()
    contents = {i: i + 1 for i in range(512)}
    snapshot = create_snapshot(rig.store, "fn", 4096, contents)
    ws = ReapWorkingSet(pages_in_fault_order=list(range(512)))
    ws_file = write_working_set_file(rig.store, "fn.ws", ws, snapshot)
    vm = MicroVM(rig.env, HOST, VmmParams(), rig.cache, 4096, use_uffd=True)

    elapsed = rig.run(
        reap_setup(rig.env, HOST, vm, ws, ws_file, snapshot)
    )
    assert elapsed > 0
    assert vm.space.rss_pages() == 512
    assert vm.space.pte[10] == 11
    # Bypasses the page cache entirely.
    assert len(rig.cache) == 0
    # Sequential whole-file read: 2 chunks of 256 pages.
    assert rig.device.stats.requests == 2
    assert rig.device.stats.sequential_requests == 1
    # Install cost is part of the blocking setup.
    assert elapsed >= 512 * HOST.uffd_copy_us


def test_reap_handler_serves_hole_cached_and_disk():
    rig = Rig()
    snapshot = create_snapshot(rig.store, "fn", 256, {10: 100, 20: 200})
    handler = make_reap_fault_handler(rig.env, HOST, rig.cache, snapshot)

    def scenario():
        value_hole = yield from handler(5)
        t_hole = rig.env.now
        rig.cache.insert(snapshot.memory_file.name, 10)
        value_cached = yield from handler(10)
        t_cached = rig.env.now - t_hole
        value_disk = yield from handler(20)
        t_disk = rig.env.now - t_hole - t_cached
        return value_hole, value_cached, value_disk, t_cached, t_disk

    hole, cached, disk, t_cached, t_disk = rig.run(scenario())
    assert hole == 0
    assert cached == 100
    assert disk == 200
    assert t_disk > t_cached  # disk path pays the device read
    # Handler reads go through the page cache with readahead.
    assert rig.cache.peek(snapshot.memory_file.name, 20)


def test_mincore_recorder_groups_by_scan_order():
    rig = Rig()
    from repro.host.vma import AddressSpace

    space = AddressSpace(10_000)
    procfs = Procfs(rig.env, HOST, space)
    done = rig.env.event()

    def guest():
        # Make 1500 pages resident in two waves; RSS mirrors that.
        for page in range(1500):
            rig.cache.insert("mem", page)
            space.install_pte(page, 1)
            if page % 100 == 0:
                yield rig.env.timeout(300)
        yield rig.env.timeout(2_000)
        for page in range(4000, 5500):
            rig.cache.insert("mem", page)
            space.install_pte(page, 1)
            if page % 100 == 0:
                yield rig.env.timeout(300)
        yield rig.env.timeout(500)
        done.succeed()

    recorder = rig.env.process(
        mincore_recorder(
            rig.env,
            HOST,
            rig.cache,
            procfs,
            "mem",
            10_000,
            done,
            group_pages=1024,
            poll_interval_us=100,
        )
    )
    rig.env.process(guest())
    ws = rig.env.run(until=recorder)
    assert len(ws) == 3000
    # Pages of the first wave are in earlier groups than the second.
    assert ws.group(0) < ws.group(4100)
    assert ws.num_groups >= 2
    # Group sizes respect the 1024 cap.
    for group in range(1, ws.num_groups + 1):
        assert len(ws.pages_of_group(group)) <= 1024


def test_mincore_recorder_final_sweep_catches_tail():
    rig = Rig()
    from repro.host.vma import AddressSpace

    space = AddressSpace(1000)
    procfs = Procfs(rig.env, HOST, space)
    done = rig.env.event()

    def guest():
        yield rig.env.timeout(50)
        # Fewer than group_pages pages: no RSS-triggered scan fires.
        for page in range(10):
            rig.cache.insert("mem", page)
            space.install_pte(page, 1)
        done.succeed()

    recorder = rig.env.process(
        mincore_recorder(
            rig.env, HOST, rig.cache, procfs, "mem", 1000, done
        )
    )
    rig.env.process(guest())
    ws = rig.env.run(until=recorder)
    assert len(ws) == 10
    assert ws.num_groups == 1
