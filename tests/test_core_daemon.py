"""Unit tests for daemon behaviours not covered by the platform
integration tests."""

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

TINY = WorkloadProfile(
    name="tiny-daemon",
    description="minimal profile",
    core_pages=200,
    var_base_pages=50,
    var_pool_pages=200,
    anon_base_pages=100,
    compute_base_us=5_000.0,
    spread_factor=5.0,
    total_pages=16_384,
    boot_pages=1_024,
)


def test_drop_caches_resets_cache_and_device():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    platform.invoke(handle, INPUT_A, Policy.FIRECRACKER)
    # The invocation populated the cache and issued reads.
    platform.invoke(handle, INPUT_A, Policy.FIRECRACKER, drop_caches=False)
    assert len(platform.cache) > 0
    platform.drop_caches()
    assert len(platform.cache) == 0
    assert platform.device.stats.requests == 0


def test_invoke_without_drop_caches_is_faster():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    cold_cache = platform.invoke(handle, INPUT_A, Policy.FIRECRACKER)
    warm_cache = platform.invoke(
        handle, INPUT_A, Policy.FIRECRACKER, drop_caches=False
    )
    assert warm_cache.total_us < cold_cache.total_us
    assert warm_cache.major_faults < cold_cache.major_faults


def test_record_input_distinguishes_artifacts():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    a = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    b = platform.ensure_record(
        handle, InputSpec(content_id=2, size_ratio=2.0), Policy.FAASNAP
    )
    assert a is not b
    assert len(b.ws_groups) > len(a.ws_groups)


def test_clone_artifacts_are_cached_across_bursts():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    clones = platform.make_clones(handle, 2)
    first = platform.invoke_burst(
        handle,
        INPUT_A,
        Policy.FAASNAP,
        parallelism=2,
        same_snapshot=False,
        clones=clones,
    )
    records_before = len(platform._artifacts)
    second = platform.invoke_burst(
        handle,
        INPUT_A,
        Policy.FAASNAP,
        parallelism=2,
        same_snapshot=False,
        clones=clones,
    )
    assert len(platform._artifacts) == records_before  # no new records
    assert len(first) == len(second) == 2


def test_burst_with_too_few_clones_rejected():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    clones = platform.make_clones(handle, 1)
    with pytest.raises(ValueError, match="clones"):
        platform.invoke_burst(
            handle,
            INPUT_A,
            Policy.FAASNAP,
            parallelism=3,
            same_snapshot=False,
            clones=clones,
        )


def test_warm_policy_ignores_page_cache_state():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    result = platform.invoke(handle, INPUT_A, Policy.WARM)
    assert result.setup_us == 0.0
    assert result.major_faults == 0
    assert platform.device.stats.requests == 0


def test_results_report_memory_footprint():
    platform = FaaSnapPlatform()
    handle = platform.register_function(TINY)
    result = platform.invoke(handle, INPUT_A, Policy.FAASNAP)
    assert result.rss_pages > 0
    assert result.memory_footprint_mb > 0
    reap = platform.invoke(handle, INPUT_A, Policy.REAP)
    assert reap.private_buffer_pages > 0  # REAP's staging buffer
