"""Tests for the §7 extensions: snapshot secret wiping and tiered
artifact storage."""

import dataclasses

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.core.restore import PlatformConfig
from repro.storage.presets import EBS_IO2
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

SMALL = WorkloadProfile(
    name="small-secure",
    description="tiny profile for extension tests",
    core_pages=300,
    var_base_pages=100,
    var_pool_pages=400,
    anon_base_pages=150,
    anon_free_fraction=0.8,
    compute_base_us=10_000.0,
    spread_factor=5.0,
    input_b_ratio=1.4,
    total_pages=16_384,
    boot_pages=1_024,
)


# -- snapshot secret wiping (7.4) ------------------------------------


def secret_pages():
    """Pages that hold PRNG state in the runtime region."""
    from repro.workloads.base import build_layout, runtime_resident_offsets

    layout = build_layout(SMALL)
    offsets = runtime_resident_offsets(SMALL)
    return tuple(layout.runtime_page(off) for off in offsets[:4])


def test_wiped_pages_absent_from_snapshot():
    platform = FaaSnapPlatform()
    pages = secret_pages()
    handle = platform.register_function(SMALL, wipe_pages=pages)
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    for page in pages:
        assert artifacts.warm_snapshot.page_value(page) == 0
    # Without wiping, the same pages hold runtime state.
    plain = FaaSnapPlatform()
    plain_handle = plain.register_function(SMALL)
    plain_artifacts = plain.ensure_record(plain_handle, INPUT_A, Policy.FAASNAP)
    for page in pages:
        assert plain_artifacts.warm_snapshot.page_value(page) != 0


def test_wiped_pages_not_in_loading_set():
    """Wiped (zero) pages must be served from anonymous memory, not
    prefetched from any file."""
    platform = FaaSnapPlatform()
    pages = secret_pages()
    handle = platform.register_function(SMALL, wipe_pages=pages)
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    covered = artifacts.loading_set.covered_pages()
    for page in pages:
        assert page not in covered


def test_restored_clones_do_not_share_wiped_state():
    """Two VMs restored from the same wiped snapshot observe zeros at
    the secret pages instead of a shared PRNG state (7.4)."""
    platform = FaaSnapPlatform()
    pages = secret_pages()
    handle = platform.register_function(SMALL, wipe_pages=pages)
    results = platform.invoke_burst(
        handle, INPUT_A, Policy.FAASNAP, parallelism=2
    )
    assert len(results) == 2
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    for page in pages:
        assert artifacts.warm_snapshot.page_value(page) == 0


def test_wipe_does_not_break_other_pages():
    platform = FaaSnapPlatform()
    handle = platform.register_function(SMALL, wipe_pages=secret_pages())
    result = platform.invoke(handle, SMALL.input_b(), Policy.FAASNAP)
    assert result.total_us > 0
    assert result.fault_count() > 0


# -- tiered storage (7.2) -----------------------------------------------


def tiered_platform():
    config = dataclasses.replace(
        PlatformConfig(), device=EBS_IO2, tiered_storage=True
    )
    return FaaSnapPlatform(config)


def test_tiered_places_files_on_separate_devices():
    platform = tiered_platform()
    handle = platform.register_function(SMALL)
    faasnap = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    reap = platform.ensure_record(handle, INPUT_A, Policy.REAP)
    assert faasnap.warm_snapshot.memory_file.device.spec.name == "ebs-io2"
    assert faasnap.loading_file.device.spec.name == "nvme-local"
    assert reap.reap_ws_file.device.spec.name == "nvme-local"


def test_tiered_invocations_work_for_all_policies():
    platform = tiered_platform()
    handle = platform.register_function(SMALL)
    for policy in (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP):
        result = platform.invoke(handle, SMALL.input_b(), policy)
        assert result.total_us > 0


def test_untiered_platform_has_single_store():
    platform = FaaSnapPlatform()
    assert platform.artifact_store is platform.store
    assert platform.local_device is None
